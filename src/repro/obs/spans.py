"""Per-packet lifecycle spans reconstructed from an event trace.

The paper's central claim is that packet chaining removes *allocation*
latency specifically. End-to-end averages cannot show that; this module
can. From a trace carrying ``packet_created``, ``flit_injected``,
``head_arrived``, ``vc_alloc``, ``sa_grant``, ``pc_chain``,
``flit_routed``, and ``flit_ejected`` events it rebuilds, for every
packet, the full timeline

    created -> injected -> [hop: arrived -> (vc granted) -> granted ->
    departed]* -> head ejected -> tail ejected

and decomposes packet latency into five exactly-summing components:

- **source_queue** — cycles waiting at the source terminal before the
  head flit entered the network;
- **vc_wait** — cycles a head waited for an output VC before it could
  even bid for the switch (only nonzero under split VC allocation);
- **sa_wait** — cycles between a head reaching the front of a router
  and winning switch allocation *or being chained*: the allocation
  latency packet chaining attacks;
- **traversal** — wire/switch pipeline cycles (channel delays, the ST
  stage, the one-cycle chain handoff);
- **serialization** — body/tail flits streaming out behind the head.

``source_queue + vc_wait + sa_wait + traversal + serialization ==
latency`` holds per packet by construction (the segments telescope).

Spans also export as Chrome trace-event JSON (one "thread" per packet,
one slice per segment) for the Perfetto / ``chrome://tracing`` UI.
"""

import json

from repro.obs.metrics import LATENCY_EDGES

#: Decomposition component names, in timeline order.
SPAN_COMPONENTS = (
    "source_queue",
    "vc_wait",
    "sa_wait",
    "traversal",
    "serialization",
)


class Hop:
    """One router visit by a packet's head flit."""

    __slots__ = ("router", "arrived", "vc_cycle", "grant", "departed", "chained")

    def __init__(self, router, arrived):
        self.router = router
        self.arrived = arrived
        self.vc_cycle = None  # output VC claimed (split VA: before grant)
        self.grant = None  # sa_grant or pc_chain cycle
        self.departed = None  # head flit_routed cycle
        self.chained = False  # granted by the PC allocator, not SA

    @property
    def complete(self):
        return self.grant is not None and self.departed is not None

    @property
    def vc_wait(self):
        """Cycles stalled waiting for an output VC before bidding SA."""
        if self.vc_cycle is not None and self.vc_cycle < self.grant:
            return self.vc_cycle - self.arrived
        return 0

    @property
    def alloc_wait(self):
        """Cycles from head arrival to allocation (VC wait excluded)."""
        return self.grant - self.arrived - self.vc_wait

    def to_dict(self):
        return {
            "router": self.router,
            "arrived": self.arrived,
            "grant": self.grant,
            "departed": self.departed,
            "chained": self.chained,
            "vc_wait": self.vc_wait,
            "sa_wait": self.alloc_wait,
        }


class PacketSpan:
    """The reconstructed lifecycle of one packet."""

    __slots__ = (
        "pid", "src", "dest", "size", "created", "injected",
        "head_ejected", "ejected", "hops",
    )

    def __init__(self, pid):
        self.pid = pid
        self.src = None
        self.dest = None
        self.size = None
        self.created = None
        self.injected = None
        self.head_ejected = None
        self.ejected = None
        self.hops = []

    @property
    def complete(self):
        return (
            self.created is not None
            and self.injected is not None
            and self.head_ejected is not None
            and self.ejected is not None
            and self.hops
            and all(h.complete for h in self.hops)
        )

    @property
    def latency(self):
        return self.ejected - self.created

    @property
    def source_queue(self):
        return self.injected - self.created

    @property
    def vc_wait(self):
        return sum(h.vc_wait for h in self.hops)

    @property
    def sa_wait(self):
        return sum(h.alloc_wait for h in self.hops)

    @property
    def serialization(self):
        return self.ejected - self.head_ejected

    @property
    def traversal(self):
        """Wire + pipeline cycles: everything that is not waiting.

        Computed as the residual so the five components always sum to
        the packet latency, even for exotic channel delays.
        """
        return (
            self.latency - self.source_queue - self.vc_wait
            - self.sa_wait - self.serialization
        )

    def components(self):
        return {
            "source_queue": self.source_queue,
            "vc_wait": self.vc_wait,
            "sa_wait": self.sa_wait,
            "traversal": self.traversal,
            "serialization": self.serialization,
        }

    def to_dict(self):
        data = self.components()
        data.update(
            pid=self.pid, src=self.src, dest=self.dest, size=self.size,
            created=self.created, ejected=self.ejected,
            latency=self.latency, hops=[h.to_dict() for h in self.hops],
        )
        return data


class SpanSet:
    """All complete packet spans from one trace, plus aggregates."""

    def __init__(self, spans, incomplete=0):
        self.spans = spans
        self.incomplete = incomplete

    def __len__(self):
        return len(self.spans)

    def __iter__(self):
        return iter(self.spans)

    # --- aggregation ------------------------------------------------------

    def decomposition(self):
        """Totals / means of each latency component across all packets."""
        n = len(self.spans)
        totals = {name: 0 for name in SPAN_COMPONENTS}
        latency_total = 0
        hop_count = chained = 0
        chained_wait = sa_hop_wait = 0
        for span in self.spans:
            latency_total += span.latency
            for name, value in span.components().items():
                totals[name] += value
            for hop in span.hops:
                hop_count += 1
                if hop.chained:
                    chained += 1
                    chained_wait += hop.alloc_wait
                else:
                    sa_hop_wait += hop.alloc_wait
        mean = {
            name: (totals[name] / n if n else 0.0) for name in SPAN_COMPONENTS
        }
        return {
            "packets": n,
            "incomplete": self.incomplete,
            "latency_total": latency_total,
            "latency_mean": latency_total / n if n else 0.0,
            "total": totals,
            "mean": mean,
            "hops": {
                "count": hop_count,
                "chained": chained,
                "chained_fraction": chained / hop_count if hop_count else 0.0,
                "mean_wait": (
                    (chained_wait + sa_hop_wait) / hop_count
                    if hop_count else 0.0
                ),
                "mean_wait_chained": (
                    chained_wait / chained if chained else 0.0
                ),
                "mean_wait_sa": (
                    sa_hop_wait / (hop_count - chained)
                    if hop_count > chained else 0.0
                ),
            },
        }

    def publish_metrics(self, registry):
        """Register per-packet component histograms (and hop counters)."""
        for name in SPAN_COMPONENTS:
            hist = registry.histogram(
                f"span_{name}_cycles", LATENCY_EDGES,
                help=f"Per-packet {name} cycles from span reconstruction",
            )
            for span in self.spans:
                hist.observe(span.components()[name])
        decomp = self.decomposition()
        registry.counter(
            "span_packets", help="Packets with a complete span"
        ).inc(decomp["packets"])
        registry.counter(
            "span_packets_incomplete",
            help="Packets dropped from span reconstruction (partial trace)",
        ).inc(decomp["incomplete"])
        registry.counter(
            "span_hops_chained", help="Hops allocated by packet chaining"
        ).inc(decomp["hops"]["chained"])
        registry.counter(
            "span_hops", help="Router hops across all complete spans"
        ).inc(decomp["hops"]["count"])
        return registry

    # --- Chrome trace-event / Perfetto export -----------------------------

    def to_chrome_trace(self, limit=None):
        """Chrome trace-event JSON (load in Perfetto / chrome://tracing).

        One "thread" per packet, one complete-event slice per lifecycle
        segment; ``ts``/``dur`` are simulation cycles (displayed as
        microseconds). ``limit`` caps the number of packets exported.
        """
        events = []
        spans = self.spans if limit is None else self.spans[:limit]
        for span in spans:
            tid = span.pid
            events.append({
                "ph": "M", "name": "thread_name", "pid": 0, "tid": tid,
                "args": {
                    "name": f"packet {span.pid} ({span.src}->{span.dest})"
                },
            })

            def slice_(name, start, dur, args=None):
                if dur <= 0:
                    return
                ev = {
                    "ph": "X", "name": name, "cat": "span", "pid": 0,
                    "tid": tid, "ts": start, "dur": dur,
                }
                if args:
                    ev["args"] = args
                events.append(ev)

            slice_("source_queue", span.created, span.source_queue)
            prev_dep = span.injected
            for hop in span.hops:
                slice_("link", prev_dep, hop.arrived - prev_dep)
                label = "pc_chain" if hop.chained else "sa_wait"
                slice_(
                    label, hop.arrived, hop.grant - hop.arrived,
                    args={"router": hop.router, "vc_wait": hop.vc_wait},
                )
                slice_("switch", hop.grant, hop.departed - hop.grant,
                       args={"router": hop.router})
                prev_dep = hop.departed
            slice_("link", prev_dep, span.head_ejected - prev_dep)
            slice_("serialization", span.head_ejected, span.serialization)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def save_chrome_trace(self, path, limit=None):
        from repro.obs.trace import open_text_write

        with open_text_write(path) as fh:
            json.dump(self.to_chrome_trace(limit=limit), fh)
            fh.write("\n")


def build_spans(events):
    """Reconstruct a :class:`SpanSet` from an iterable of trace events.

    Tolerates filtered traces: packets missing any lifecycle event are
    counted as incomplete and excluded from aggregation. Events arriving
    for a closed hop (mid-packet re-allocation after a connection was
    cut, body-flit routing) are ignored by design — spans track head
    flits; body-flit cost lands in the serialization component.
    """
    spans = {}
    open_hops = {}  # pid -> Hop currently being serviced

    def span_for(pid):
        span = spans.get(pid)
        if span is None:
            span = spans[pid] = PacketSpan(pid)
        return span

    for event in events:
        ev = event["ev"]
        pid = event.get("pid")
        if pid is None:
            continue
        cycle = event["cycle"]
        if ev == "packet_created":
            span = span_for(pid)
            span.created = cycle
            span.src = event.get("src")
            span.dest = event.get("dest")
            span.size = event.get("size")
        elif ev == "flit_injected":
            if event.get("idx") == 0:
                span_for(pid).injected = cycle
        elif ev == "head_arrived":
            span = span_for(pid)
            hop = Hop(event["router"], cycle)
            span.hops.append(hop)
            open_hops[pid] = hop
        elif ev == "vc_alloc":
            hop = open_hops.get(pid)
            if hop is not None and hop.vc_cycle is None:
                hop.vc_cycle = cycle
        elif ev in ("sa_grant", "pc_chain"):
            hop = open_hops.get(pid)
            if hop is not None and hop.grant is None:
                hop.grant = cycle
                hop.chained = ev == "pc_chain"
        elif ev == "flit_routed":
            if event.get("idx") == 0:
                hop = open_hops.pop(pid, None)
                if hop is not None and hop.grant is not None:
                    hop.departed = cycle
                # A popped hop with no grant (filtered trace) stays
                # incomplete, excluding the packet from aggregation.
        elif ev == "flit_ejected":
            span = span_for(pid)
            if event.get("idx") == 0:
                span.head_ejected = cycle
            if event.get("tail"):
                span.ejected = cycle

    complete = [s for s in spans.values() if s.complete]
    complete.sort(key=lambda s: s.pid)
    return SpanSet(complete, incomplete=len(spans) - len(complete))


def format_spans_report(span_set, top=5):
    """Human-readable latency-decomposition report for one SpanSet."""
    decomp = span_set.decomposition()
    lines = []
    lines.append(
        f"spans: {decomp['packets']} complete packets"
        f" ({decomp['incomplete']} incomplete dropped)"
    )
    if not decomp["packets"]:
        lines.append("  (no complete packet lifecycles in trace; "
                     "was the trace filtered?)")
        return "\n".join(lines) + "\n"
    lines.append("")
    lines.append("latency decomposition (mean cycles per packet)")
    latency_mean = decomp["latency_mean"]
    for name in SPAN_COMPONENTS:
        mean = decomp["mean"][name]
        pct = 100.0 * mean / latency_mean if latency_mean else 0.0
        bar = "#" * max(0, round(40 * mean / latency_mean)) if latency_mean \
            else ""
        lines.append(f"  {name:<14} {mean:>8.2f}  {pct:>5.1f}%  {bar}")
    lines.append(f"  {'total latency':<14} {latency_mean:>8.2f}")
    hops = decomp["hops"]
    lines.append("")
    lines.append(
        f"hops: {hops['count']} total, {hops['chained']} chained"
        f" ({100 * hops['chained_fraction']:.1f}%)"
    )
    lines.append(
        f"  allocation wait/hop: {hops['mean_wait']:.2f} cycles overall"
        f" (SA {hops['mean_wait_sa']:.2f},"
        f" chained {hops['mean_wait_chained']:.2f})"
    )
    worst = sorted(span_set, key=lambda s: s.sa_wait, reverse=True)[:top]
    if worst:
        lines.append("")
        lines.append(f"top {len(worst)} packets by allocation wait")
        lines.append(f"  {'pid':>8} {'sa_wait':>8} {'latency':>8} {'hops':>5}")
        for span in worst:
            lines.append(
                f"  {span.pid:>8} {span.sa_wait:>8} {span.latency:>8}"
                f" {len(span.hops):>5}"
            )
    return "\n".join(lines) + "\n"
