"""Periodic network-state sampling: occupancy, credits, link utilization.

A :class:`NetworkSampler` attaches to a
:class:`~repro.network.network.Network` and, every ``period`` cycles,
records a snapshot of the whole network's congestion state:

- per-router **buffer occupancy** (flits sitting in input VCs) — the
  quantity dynamic-VC-allocation studies identify as the imbalance that
  drives performance;
- per-router **free downstream credits** (how much headroom each
  router's outputs still have);
- per-router **connection-table occupancy** (held switch connections —
  high under chaining, a direct view of incremental allocation at work);
- per-output-port **flit counts since the previous sample**, i.e.
  link utilization — the profile behind hotspot and tree-saturation
  analysis.

Samples live in a bounded ring buffer (old samples are dropped and
counted, never reallocated), export as JSONL (gzip via a ``.gz`` path),
and render as ASCII heatmaps for mesh/torus-style ``k x k`` grids.

Cost model: unattached networks pay one ``is None`` check per cycle;
an attached sampler pays one method call per cycle plus the snapshot
every ``period`` cycles (see ``benchmarks/test_obs_overhead.py``).
"""

import json
from collections import deque

from repro.stats.utilization import shade

#: Per-router scalar fields a sample carries (heatmap candidates).
SAMPLE_FIELDS = ("buffered", "credits_free", "conns_held", "activity")


class NetworkSampler:
    """Bounded periodic snapshots of network congestion state."""

    def __init__(self, period=100, capacity=1024):
        if period < 1:
            raise ValueError("sampler period must be >= 1")
        if capacity < 1:
            raise ValueError("sampler capacity must be >= 1")
        self.period = period
        self.capacity = capacity
        self.samples = deque()
        self.dropped = 0
        self.network = None
        self._next_cycle = 0
        self._last_port_flits = None

    def bind(self, network):
        """Called by ``Network.attach_sampler``; snapshots start at 0."""
        self.network = network
        self._next_cycle = network.cycle
        self._last_port_flits = [list(r.port_flits) for r in network.routers]
        return self

    def maybe_sample(self, cycle):
        """Per-cycle hook from ``Network.step``; snapshots on period."""
        if cycle >= self._next_cycle:
            self._snapshot(cycle)
            self._next_cycle = cycle + self.period

    def _snapshot(self, cycle):
        net = self.network
        buffered = []
        credits_free = []
        conns_held = []
        port_flits = []
        for i, router in enumerate(net.routers):
            buffered.append(router.total_buffered_flits())
            credits_free.append(sum(sum(c) for c in router.credits))
            conns_held.append(
                sum(1 for c in router.conn_out if c is not None)
            )
            last = self._last_port_flits[i]
            now = router.port_flits
            port_flits.append([now[p] - last[p] for p in range(router.radix)])
            self._last_port_flits[i] = list(now)
        sample = {
            "cycle": cycle,
            "buffered": buffered,
            "credits_free": credits_free,
            "conns_held": conns_held,
            "port_flits": port_flits,
        }
        if len(self.samples) >= self.capacity:
            self.samples.popleft()
            self.dropped += 1
        self.samples.append(sample)

    # --- derived views ----------------------------------------------------

    def router_series(self, field):
        """Per-router scalars for every sample: list of per-router lists.

        ``activity`` is total flits switched per router per cycle over
        the sampling interval; the other fields are raw sample values.
        """
        if field == "activity":
            return [
                [sum(ports) / self.period for ports in s["port_flits"]]
                for s in self.samples
            ]
        if field not in SAMPLE_FIELDS:
            raise ValueError(
                f"unknown sample field {field!r} (expected one of "
                f"{', '.join(SAMPLE_FIELDS)})"
            )
        return [list(s[field]) for s in self.samples]

    def link_utilization(self):
        """Mean flits/cycle per (router, port) across all samples."""
        if not self.samples:
            return {}
        totals = {}
        for sample in self.samples:
            for router, ports in enumerate(sample["port_flits"]):
                for port, flits in enumerate(ports):
                    totals[(router, port)] = totals.get((router, port), 0) + flits
        cycles = self.period * len(self.samples)
        return {key: flits / cycles for key, flits in totals.items()}

    def hottest_links(self, top=10):
        """The ``top`` busiest (router, port, flits/cycle), busiest first."""
        util = self.link_utilization()
        ranked = sorted(util.items(), key=lambda kv: kv[1], reverse=True)
        return [(r, p, u) for (r, p), u in ranked[:top] if u > 0][:top]

    def heatmap(self, field="buffered", reduce="mean"):
        """ASCII heatmap of a per-router field on a ``k x k`` grid.

        ``reduce`` is ``mean`` (across all samples) or ``last`` (the
        most recent sample only). Requires a grid topology exposing
        ``k`` and ``router_at`` (mesh, torus, cmesh); raises TypeError
        otherwise, mirroring ``stats.utilization.mesh_heatmap``.
        """
        topo = self.network.topology
        k = getattr(topo, "k", None)
        if k is None:
            raise TypeError("heatmap requires a k x k grid topology")
        series = self.router_series(field)
        if not series:
            return "(no samples)"
        if reduce == "last":
            values = series[-1]
        elif reduce == "mean":
            n = len(series)
            values = [
                sum(sample[r] for sample in series) / n
                for r in range(len(series[0]))
            ]
        else:
            raise ValueError(f"unknown reduce {reduce!r} (mean or last)")
        peak = max(values) if values else 0.0
        rows = []
        for y in range(k):
            rows.append(
                "".join(
                    shade(values[topo.router_at(x, y)], peak)
                    for x in range(k)
                )
            )
        return "\n".join(rows)

    # --- export -----------------------------------------------------------

    def to_dicts(self):
        """All retained samples, oldest first (JSON-serializable)."""
        return list(self.samples)

    def save_jsonl(self, path):
        """One sample per line; ``.gz`` paths are gzip-compressed."""
        from repro.obs.trace import open_text_write

        with open_text_write(path) as fh:
            for sample in self.samples:
                fh.write(json.dumps(sample, separators=(",", ":")))
                fh.write("\n")
