"""Wall-clock profiling of the router pipeline phases.

A :class:`PhaseProfiler` attaches to a :class:`~repro.network.network.Network`
and accumulates `time.perf_counter` spans for each router pipeline
phase (connection release, streaming/traversal, SA request collection,
PC allocation, SA commit, split-VC allocation, end-of-cycle) plus the
whole-network cycle, bucketed into fixed N-cycle epochs. Each epoch
reports cycles/sec, so a perf regression shows up as a drop in the
epoch series rather than a vague "it feels slower".

The router's hot path pays one ``profiler is None`` check per phase per
cycle when profiling is off; the timers only run when a profiler is
attached (opt-in, like the trace bus).

Beyond the phase split, the profiler attributes wall time to named
*components* inside a phase — currently the allocator invocations
(``sa``/``pc``/``vc_alloc`` each tagged with the configured allocator
type, e.g. ``alloc:islip1``) — so ``repro report`` can answer "which
allocator should the vectorization PR attack first". The whole
breakdown exports as collapsed stacks (``save_collapsed``), one
``frame;frame;frame count`` line per stack with counts in
microseconds, directly consumable by flamegraph.pl / speedscope /
inferno.

Output (``to_dict()`` / ``save()``) follows the benchmarks' JSON
conventions — a flat dict of scalars plus an ``epochs`` list — so the
files drop into the same tooling as ``benchmarks/results``.
"""

import json
import time

#: Router pipeline phases, in execution order.
PHASES = (
    "release",  # starvation-control forced releases
    "stream",  # flits streamed on held connections (traversal)
    "sa_collect",  # switch-allocator request collection
    "pc",  # PC candidate collection + PC allocation + PC commit
    "sa",  # switch allocation + commit
    "vc_alloc",  # split VC allocation (no-op for the combined allocator)
    "end",  # end-of-cycle bookkeeping (ages, wait counters)
)


class PhaseProfiler:
    """Per-epoch accumulation of per-phase wall-clock time."""

    def __init__(self, epoch_cycles=1000):
        if epoch_cycles < 1:
            raise ValueError("epoch_cycles must be >= 1")
        self.epoch_cycles = epoch_cycles
        self.epochs = []
        self.cycles = 0
        self._phase_seconds = {name: 0.0 for name in PHASES}
        #: (phase, component) -> total seconds, run-global (components
        #: attribute hot-spot totals, not per-epoch series).
        self._component_seconds = {}
        self._epoch_start_cycle = 0
        self._epoch_start_time = None

    def add(self, phase, seconds):
        """Accumulate one phase span (called from Router.step)."""
        self._phase_seconds[phase] += seconds

    def add_component(self, phase, component, seconds):
        """Attribute seconds to a named component within ``phase``.

        Component time is a *subset* of its phase's time (the router
        times allocator calls inside the phase span), so hot-spot
        reports subtract it to get the phase's self time.
        """
        key = (phase, component)
        self._component_seconds[key] = (
            self._component_seconds.get(key, 0.0) + seconds
        )

    def end_cycle(self):
        """Advance the cycle count; roll the epoch at the boundary."""
        if self._epoch_start_time is None:
            self._epoch_start_time = time.perf_counter()
        self.cycles += 1
        if self.cycles - self._epoch_start_cycle >= self.epoch_cycles:
            self._finish_epoch()

    def _finish_epoch(self):
        now = time.perf_counter()
        cycles = self.cycles - self._epoch_start_cycle
        if cycles == 0:
            return
        elapsed = max(now - self._epoch_start_time, 1e-12)
        self.epochs.append(
            {
                "start_cycle": self._epoch_start_cycle,
                "cycles": cycles,
                "seconds": elapsed,
                "cycles_per_sec": cycles / elapsed,
                "phase_seconds": dict(self._phase_seconds),
            }
        )
        self._phase_seconds = {name: 0.0 for name in PHASES}
        self._epoch_start_cycle = self.cycles
        self._epoch_start_time = now

    def finish(self):
        """Close the trailing partial epoch (call once, after the run)."""
        if self._epoch_start_time is not None:
            self._finish_epoch()

    # --- reporting --------------------------------------------------------

    def cycles_per_sec(self):
        """Overall simulated cycles per wall-clock second."""
        seconds = sum(e["seconds"] for e in self.epochs)
        cycles = sum(e["cycles"] for e in self.epochs)
        return cycles / seconds if seconds > 0 else 0.0

    def phase_totals(self):
        """Total seconds per phase across all epochs."""
        totals = {name: 0.0 for name in PHASES}
        for epoch in self.epochs:
            for name, seconds in epoch["phase_seconds"].items():
                totals[name] += seconds
        return totals

    def total_seconds(self):
        """Wall-clock seconds across all closed epochs."""
        return sum(e["seconds"] for e in self.epochs)

    def component_totals(self):
        """``{"phase;component": seconds}`` for every timed component."""
        return {
            f"{phase};{component}": seconds
            for (phase, component), seconds in sorted(
                self._component_seconds.items()
            )
        }

    def hotspots(self):
        """Wall-time attribution rows, hottest first.

        Each row is ``(stack, seconds, pct_of_total)`` where ``stack``
        is a ``;``-joined frame path. Phase rows report *self* time
        (phase minus its timed components); an ``other`` row covers
        wall time outside the router pipeline (terminals, channels,
        stats, observer hooks).
        """
        return compute_hotspots(
            self.total_seconds(), self.phase_totals(),
            self.component_totals(),
        )

    def collapsed_stacks(self):
        """Flamegraph-compatible collapsed-stack lines.

        One ``sim;frame;frame count`` line per stack, where the count
        is integer microseconds of *self* time — feed the list straight
        into flamegraph.pl, inferno, or speedscope.
        """
        return _collapsed_lines(self.hotspots())

    def save_collapsed(self, path):
        """Write :meth:`collapsed_stacks` output to ``path``."""
        with open(path, "w") as fh:
            for line in self.collapsed_stacks():
                fh.write(line)
                fh.write("\n")

    def to_dict(self):
        return {
            "epoch_cycles": self.epoch_cycles,
            "total_cycles": self.cycles,
            "cycles_per_sec": self.cycles_per_sec(),
            "phase_seconds": self.phase_totals(),
            "components": self.component_totals(),
            "epochs": list(self.epochs),
        }

    def save(self, path):
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2)
            fh.write("\n")


# ---------------------------------------------------------------------------
# hot-spot attribution (shared by the live profiler and saved profiles)


def compute_hotspots(total_seconds, phase_totals, components):
    """Self-time attribution rows from profile aggregates, hottest first.

    ``components`` maps ``"phase;component"`` to seconds (a subset of
    its phase's total). Returns ``[(stack, seconds, pct_of_total)]``.
    """
    children = {}
    rows = []
    for key, secs in components.items():
        phase = key.split(";", 1)[0]
        children[phase] = children.get(phase, 0.0) + secs
        rows.append((f"router;{key}", secs))
    for phase, secs in phase_totals.items():
        rows.append(
            (f"router;{phase}", max(0.0, secs - children.get(phase, 0.0)))
        )
    rows.append(
        ("other", max(0.0, total_seconds - sum(phase_totals.values())))
    )
    rows.sort(key=lambda row: row[1], reverse=True)
    return [
        (stack, secs,
         100.0 * secs / total_seconds if total_seconds > 0 else 0.0)
        for stack, secs in rows
    ]


def hotspots_from_dict(data):
    """:func:`compute_hotspots` over a saved profile JSON dict."""
    total = sum(e["seconds"] for e in data.get("epochs", ()))
    return compute_hotspots(
        total, data.get("phase_seconds", {}), data.get("components", {})
    )


def _collapsed_lines(hotspot_rows):
    lines = []
    for stack, seconds, _ in hotspot_rows:
        usec = int(round(seconds * 1e6))
        if usec > 0:
            lines.append(f"sim;{stack} {usec}")
    return lines


def collapsed_from_dict(data):
    """Collapsed-stack lines from a saved profile JSON dict."""
    return _collapsed_lines(hotspots_from_dict(data))


def is_profile_dict(data):
    """Does this JSON object look like a ``PhaseProfiler.to_dict()``?"""
    return (
        isinstance(data, dict)
        and "epochs" in data
        and "phase_seconds" in data
    )


def format_profile_report(data, top=10):
    """Human-readable hot-spot report for a saved profile dict.

    The ``repro report`` rendering: overall speed, the per-epoch
    cycles/sec trend, and the wall-time attribution table (phase self
    times and per-allocator components).
    """
    lines = []
    epochs = data.get("epochs", ())
    total = sum(e["seconds"] for e in epochs)
    lines.append(
        f"profile: {data.get('total_cycles', 0)} cycles in {total:.3f}s"
        f" ({data.get('cycles_per_sec', 0.0):.0f} cycles/sec,"
        f" {len(epochs)} epochs of {data.get('epoch_cycles', '?')})"
    )
    lines.append("")
    lines.append(f"wall-clock hot spots (top {top})")
    lines.append(f"  {'stack':<40} {'seconds':>9} {'share':>7}")
    for stack, seconds, pct in hotspots_from_dict(data)[:top]:
        lines.append(f"  {stack:<40} {seconds:>9.3f} {pct:>6.1f}%")
    if epochs:
        lines.append("")
        lines.append("cycles/sec per epoch")
        peak = max(e["cycles_per_sec"] for e in epochs) or 1.0
        for epoch in epochs:
            cps = epoch["cycles_per_sec"]
            bar = "#" * max(1, round(32 * cps / peak))
            lines.append(
                f"  @{epoch['start_cycle']:>8} {cps:>10.0f}  {bar}"
            )
    return "\n".join(lines) + "\n"
