"""Wall-clock profiling of the router pipeline phases.

A :class:`PhaseProfiler` attaches to a :class:`~repro.network.network.Network`
and accumulates `time.perf_counter` spans for each router pipeline
phase (connection release, streaming/traversal, SA request collection,
PC allocation, SA commit, split-VC allocation, end-of-cycle) plus the
whole-network cycle, bucketed into fixed N-cycle epochs. Each epoch
reports cycles/sec, so a perf regression shows up as a drop in the
epoch series rather than a vague "it feels slower".

The router's hot path pays one ``profiler is None`` check per phase per
cycle when profiling is off; the timers only run when a profiler is
attached (opt-in, like the trace bus).

Output (``to_dict()`` / ``save()``) follows the benchmarks' JSON
conventions — a flat dict of scalars plus an ``epochs`` list — so the
files drop into the same tooling as ``benchmarks/results``.
"""

import json
import time

#: Router pipeline phases, in execution order.
PHASES = (
    "release",  # starvation-control forced releases
    "stream",  # flits streamed on held connections (traversal)
    "sa_collect",  # switch-allocator request collection
    "pc",  # PC candidate collection + PC allocation + PC commit
    "sa",  # switch allocation + commit
    "vc_alloc",  # split VC allocation (no-op for the combined allocator)
    "end",  # end-of-cycle bookkeeping (ages, wait counters)
)


class PhaseProfiler:
    """Per-epoch accumulation of per-phase wall-clock time."""

    def __init__(self, epoch_cycles=1000):
        if epoch_cycles < 1:
            raise ValueError("epoch_cycles must be >= 1")
        self.epoch_cycles = epoch_cycles
        self.epochs = []
        self.cycles = 0
        self._phase_seconds = {name: 0.0 for name in PHASES}
        self._epoch_start_cycle = 0
        self._epoch_start_time = None

    def add(self, phase, seconds):
        """Accumulate one phase span (called from Router.step)."""
        self._phase_seconds[phase] += seconds

    def end_cycle(self):
        """Advance the cycle count; roll the epoch at the boundary."""
        if self._epoch_start_time is None:
            self._epoch_start_time = time.perf_counter()
        self.cycles += 1
        if self.cycles - self._epoch_start_cycle >= self.epoch_cycles:
            self._finish_epoch()

    def _finish_epoch(self):
        now = time.perf_counter()
        cycles = self.cycles - self._epoch_start_cycle
        if cycles == 0:
            return
        elapsed = max(now - self._epoch_start_time, 1e-12)
        self.epochs.append(
            {
                "start_cycle": self._epoch_start_cycle,
                "cycles": cycles,
                "seconds": elapsed,
                "cycles_per_sec": cycles / elapsed,
                "phase_seconds": dict(self._phase_seconds),
            }
        )
        self._phase_seconds = {name: 0.0 for name in PHASES}
        self._epoch_start_cycle = self.cycles
        self._epoch_start_time = now

    def finish(self):
        """Close the trailing partial epoch (call once, after the run)."""
        if self._epoch_start_time is not None:
            self._finish_epoch()

    # --- reporting --------------------------------------------------------

    def cycles_per_sec(self):
        """Overall simulated cycles per wall-clock second."""
        seconds = sum(e["seconds"] for e in self.epochs)
        cycles = sum(e["cycles"] for e in self.epochs)
        return cycles / seconds if seconds > 0 else 0.0

    def phase_totals(self):
        """Total seconds per phase across all epochs."""
        totals = {name: 0.0 for name in PHASES}
        for epoch in self.epochs:
            for name, seconds in epoch["phase_seconds"].items():
                totals[name] += seconds
        return totals

    def to_dict(self):
        return {
            "epoch_cycles": self.epoch_cycles,
            "total_cycles": self.cycles,
            "cycles_per_sec": self.cycles_per_sec(),
            "phase_seconds": self.phase_totals(),
            "epochs": list(self.epochs),
        }

    def save(self, path):
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2)
            fh.write("\n")
