"""Versioned, deterministic checkpoint/restore of simulation state.

A checkpoint is one compressed JSON document capturing *everything* the
simulation needs to continue bit-identically: every router's VC
buffers, credit counters, connection/chaining registers and arbiter
pointers; every channel's in-flight flits and credits; terminal
sources/sinks; the StatsCollector; and every RNG stream
(``random.Random.getstate()`` round-tripped through JSON). Packets are
interned in a single table keyed by pid so the object graph (flits of
one packet share one Packet; a VC's ``active_packet`` is the same
object its flits reference) is rebuilt with identity intact.

The file carries a schema version and a config hash covering both the
NetworkConfig and the run spec (pattern, rate, lengths, phases); a
resume against a different configuration is refused rather than
silently producing a hybrid experiment. Checkpoints are taken *between*
cycles, so resuming re-executes exactly the cycles the killed process
lost — the restored run's SimResult, metrics export, and trace-event
stream are bit-identical to an uninterrupted run's (the chaos tests in
tests/test_resume_equivalence.py enforce this).

Deliberately excluded from snapshots (see DESIGN.md):

- fault injection and the reliable transport — refused, not dropped;
- observers (trace, profiler, sampler, invariants, watchdog) — they
  re-attach to a restored run the same way they attach to a fresh one;
- wall-clock timing (``SimResult.timing``) — not deterministic anyway.
"""

import gzip
import hashlib
import json
import os

from repro.network.flit import (
    Flit,
    Packet,
    peek_next_packet_id,
    set_next_packet_id,
)
from repro.obs.artifacts import atomic_write
from repro.routing.torus_dor import TorusRouteState
from repro.routing.ugal import UGALState

#: Bump on any incompatible change to the checkpoint layout.
#: 2: routers serialize per-allocator request/grant counters
#:    (``alloc_counters``).
SCHEMA_VERSION = 2

_MAGIC = "repro-checkpoint"


# One shared encoder: json.dumps with keyword options builds a fresh
# JSONEncoder per call, which the per-cycle digest path would pay tens
# of thousands of times per run.
_CANONICAL_ENCODER = json.JSONEncoder(sort_keys=True, separators=(",", ":"))


def canonical_json(obj):
    """The repository-wide canonical JSON encoding.

    Key-sorted, whitespace-free ``json.dumps`` — the one encoding used
    for checkpoint files, config hashes, and the per-component state
    digests in :mod:`repro.obs.digest`, so a hash of canonical JSON is
    stable across processes and dict insertion orders.
    """
    return _CANONICAL_ENCODER.encode(obj)


def canonical_sha256(obj):
    """Hex SHA-256 of an object's canonical JSON encoding."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


class CheckpointError(RuntimeError):
    """A checkpoint cannot be taken, read, or applied."""


class SimulationKilled(RuntimeError):
    """Raised by the chaos kill switch (``run_simulation(kill_at=...)``).

    Used by the resume-equivalence tests and the CI smoke job to
    simulate a crash at an arbitrary cycle; the run dies *after* the
    given cycle completed, exactly as a SIGKILL between cycles would.
    """

    def __init__(self, cycle):
        super().__init__(f"simulation killed at cycle {cycle}")
        self.cycle = cycle


# ---------------------------------------------------------------------------
# packet / flit / route-state serialization


def _route_state_to_json(state):
    if state is None:
        return None
    if isinstance(state, UGALState):
        return {
            "kind": "ugal",
            "phase": state.phase,
            "intermediate": state.intermediate,
            "minimal": state.minimal,
        }
    if isinstance(state, TorusRouteState):
        return {
            "kind": "torus",
            "crossed_dateline": state.crossed_dateline,
            "in_y": state.in_y,
        }
    if isinstance(state, tuple) and len(state) == 2 and state[0] == "y_detour":
        return {"kind": "y_detour", "port": state[1]}
    raise CheckpointError(
        f"cannot serialize route state {state!r} ({type(state).__name__})"
    )


def _route_state_from_json(data):
    if data is None:
        return None
    kind = data["kind"]
    if kind == "ugal":
        state = UGALState(data["minimal"], data["intermediate"])
        state.phase = data["phase"]
        return state
    if kind == "torus":
        state = TorusRouteState()
        state.crossed_dateline = data["crossed_dateline"]
        state.in_y = data["in_y"]
        return state
    if kind == "y_detour":
        return ("y_detour", data["port"])
    raise CheckpointError(f"unknown route state kind {kind!r}")


class SnapshotContext:
    """Interns shared Packet objects (by pid) while components serialize.

    Components call :meth:`flit` / :meth:`packet_ref`; the packet table
    accumulated in ``packets`` goes into the checkpoint once, however
    many flits or queue slots reference each packet.

    ``packet_cache`` shares the *serialized* packet dicts between
    several contexts taken at the same instant (the per-component
    digest path serializes each in-flight packet once per component
    that sees it); callers must not reuse a cache across simulated
    cycles — packets mutate between cycles.
    """

    def __init__(self, packet_cache=None):
        self.packets = {}
        self._cache = packet_cache

    def packet_ref(self, packet):
        pid = packet.pid
        if pid in self.packets:
            return pid
        if self._cache is not None:
            cached = self._cache.get(pid)
            if cached is not None:
                self.packets[pid] = cached
                return pid
        payload = packet.payload
        if payload is not None and not isinstance(
            payload, (bool, int, float, str)
        ):
            raise CheckpointError(
                f"packet {pid} carries a non-JSON payload "
                f"({type(payload).__name__}); checkpointing supports "
                f"scalar payloads only"
            )
        serialized = {
            "src": packet.src,
            "dest": packet.dest,
            "size": packet.size,
            "vc_class": packet.vc_class,
            "priority": packet.priority,
            "time_created": packet.time_created,
            "time_injected": packet.time_injected,
            "time_ejected": packet.time_ejected,
            "route_state": _route_state_to_json(packet.route_state),
            "blocked_cycles": packet.blocked_cycles,
            "payload": payload,
            "killed": packet.killed,
            "corrupted": packet.corrupted,
        }
        self.packets[pid] = serialized
        if self._cache is not None:
            self._cache[pid] = serialized
        return pid

    def flit(self, flit):
        return {
            "pid": self.packet_ref(flit.packet),
            "idx": flit.index,
            "out_port": flit.out_port,
            "vc_class": flit.vc_class,
            "vc": flit.vc,
        }


class RestoreContext:
    """Rebuilds Packets lazily from the checkpoint's packet table.

    Each pid is materialized once and cached, so every flit and
    ``active_packet`` reference resolves to the same object — restoring
    the identity relationships the router relies on (e.g. the
    ``flit.packet is not packet`` desync check while streaming).
    """

    def __init__(self, packet_table):
        self._table = packet_table
        self._cache = {}

    def packet(self, pid):
        pid = int(pid)
        if pid not in self._cache:
            data = self._table[str(pid)] if str(pid) in self._table else self._table[pid]
            packet = Packet(
                data["src"], data["dest"], data["size"], data["time_created"],
                vc_class=data["vc_class"], priority=data["priority"],
                payload=data["payload"],
            )
            packet.pid = pid
            packet.time_injected = data["time_injected"]
            packet.time_ejected = data["time_ejected"]
            packet.route_state = _route_state_from_json(data["route_state"])
            packet.blocked_cycles = data["blocked_cycles"]
            packet.killed = data["killed"]
            packet.corrupted = data["corrupted"]
            self._cache[pid] = packet
        return self._cache[pid]

    def flit(self, data):
        packet = self.packet(data["pid"])
        idx = data["idx"]
        flit = Flit(packet, idx, idx == 0, idx == packet.size - 1)
        flit.out_port = data["out_port"]
        flit.vc_class = data["vc_class"]
        flit.vc = data["vc"]
        return flit


# ---------------------------------------------------------------------------
# run spec and config hashing


def lengths_spec(dist):
    """A packet-length distribution as a JSON spec (and back, below)."""
    from repro.traffic.injection import BimodalLength, FixedLength

    if isinstance(dist, FixedLength):
        return {"kind": "fixed", "length": dist.length}
    if isinstance(dist, BimodalLength):
        return {
            "kind": "bimodal",
            "short": dist.short,
            "long": dist.long,
            "short_fraction": dist.short_fraction,
        }
    raise CheckpointError(
        f"cannot checkpoint length distribution {type(dist).__name__}"
    )


def lengths_from_spec(spec):
    from repro.traffic.injection import BimodalLength, FixedLength

    kind = spec["kind"]
    if kind == "fixed":
        return FixedLength(spec["length"])
    if kind == "bimodal":
        return BimodalLength(spec["short"], spec["long"], spec["short_fraction"])
    raise CheckpointError(f"unknown length distribution kind {kind!r}")


def canonical_run_spec(pattern, rate, lengths, warmup, measure, drain):
    """The canonical run-spec dict covered by :func:`config_hash`.

    One layout shared by every consumer of the hash: checkpoint files,
    resume verification, and the experiment service's content-addressed
    result cache (``repro.serve``) — so a cache entry produced by the
    service is keyed identically to a checkpoint of the same
    experiment. ``lengths`` may be a distribution object or an
    already-serialized spec dict.
    """
    return {
        "pattern": pattern,
        "rate": rate,
        "lengths": lengths if isinstance(lengths, dict) else lengths_spec(lengths),
        "warmup": warmup,
        "measure": measure,
        "drain": drain,
    }


def config_hash(config, run_spec):
    """sha256 over the canonical JSON of (NetworkConfig, run spec).

    The simulation ``backend`` is excluded: the fast core is
    bit-identical to the reference core, so a checkpoint taken under
    one backend must restore under the other (the equivalence gate in
    tests/test_fastcore_equivalence.py proves the round-trip).
    """
    config_dict = config.to_dict()
    config_dict.pop("backend", None)
    return canonical_sha256({"config": config_dict, "run": run_spec})


# ---------------------------------------------------------------------------
# whole-run capture / restore


def capture_run(run, config, run_spec):
    """Snapshot a :class:`~repro.sim.runner.SimulationRun` into a payload."""
    ctx = SnapshotContext()
    network_state = run.network.snapshot(ctx)
    return {
        "magic": _MAGIC,
        "schema": SCHEMA_VERSION,
        "config": config.to_dict(),
        "config_hash": config_hash(config, run_spec),
        "run_spec": run_spec,
        "runner": {"phase": run.phase, "drain_cycles": run.drain_cycles_done},
        "cycle": run.network.cycle,
        "next_pid": peek_next_packet_id(),
        "packets": ctx.packets,
        "network": network_state,
        "injector": run.injector.state_dict(),
    }


def restore_run(run, payload):
    """Apply a checkpoint payload to a freshly built SimulationRun."""
    ctx = RestoreContext(payload["packets"])
    run.network.restore(payload["network"], ctx)
    run.injector.load_state(payload["injector"])
    run.phase = payload["runner"]["phase"]
    run.drain_cycles_done = payload["runner"]["drain_cycles"]
    # Restoring packets consumed counter values; pin the counter to the
    # snapshot's so future pids continue exactly where the killed run's
    # would have.
    set_next_packet_id(payload["next_pid"])


# ---------------------------------------------------------------------------
# file I/O


def save_checkpoint(path, payload):
    """Atomically write a checkpoint (gzip-compressed for ``.gz`` paths)."""
    data = canonical_json(payload).encode("utf-8")
    if str(path).endswith(".gz"):
        # mtime=0 keeps same-state checkpoints byte-identical.
        data = gzip.compress(data, mtime=0)
    with atomic_write(path, "wb") as fh:
        fh.write(data)


def load_checkpoint(path):
    """Read and validate a checkpoint file; returns the payload dict."""
    with open(path, "rb") as fh:
        data = fh.read()
    if data[:2] == b"\x1f\x8b":  # gzip magic, regardless of extension
        data = gzip.decompress(data)
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"not a checkpoint file: {path} ({exc})") from exc
    if not isinstance(payload, dict) or payload.get("magic") != _MAGIC:
        raise CheckpointError(f"not a checkpoint file: {path}")
    if payload.get("schema") != SCHEMA_VERSION:
        raise CheckpointError(
            f"checkpoint schema {payload.get('schema')!r} is not supported "
            f"(this build reads schema {SCHEMA_VERSION})"
        )
    return payload


class Checkpointer:
    """Periodic checkpoint writer attached to a running simulation.

    ``maybe_save`` fires every ``every`` cycles (and is cheap
    otherwise); ``save`` can be called directly for a final checkpoint.
    Writes are atomic, so a crash mid-save leaves the previous
    checkpoint intact.
    """

    def __init__(self, path, every, config, run_spec):
        if every is not None and every < 1:
            raise ValueError(f"checkpoint interval must be >= 1, got {every}")
        self.path = os.fspath(path)
        self.every = every or 1000
        self.config = config
        self.run_spec = run_spec
        #: Cycle of the last checkpoint written, or None.
        self.last_cycle = None
        #: Checkpoints written so far.
        self.saves = 0

    def maybe_save(self, run):
        cycle = run.network.cycle
        if cycle > 0 and cycle % self.every == 0 and cycle != self.last_cycle:
            self.save(run)

    def save(self, run):
        save_checkpoint(self.path, capture_run(run, self.config, self.run_spec))
        self.last_cycle = run.network.cycle
        self.saves += 1


def verify_resumable(payload, config, run_spec):
    """Refuse a checkpoint that does not match this config/run spec."""
    expected = config_hash(config, run_spec)
    if payload["config_hash"] != expected:
        raise CheckpointError(
            "checkpoint was taken under a different configuration or run "
            "spec (config hash mismatch); refusing to resume"
        )
