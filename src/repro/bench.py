"""Continuous benchmarking: the ``repro bench`` trend gate.

A standardized step-throughput suite — a fixed (topology x allocator x
size) grid with fixed seeds — measures host cycles/sec per case with
one discarded warmup repeat plus N timed repeats (median taken, so one
scheduler hiccup cannot fake a regression). Every invocation appends
one entry to a per-host history file (``BENCH_<host>.json``), building
the cycles/sec trajectory across commits that the ROADMAP's fast-core
work is measured against.

Cross-machine comparability comes from a *calibration score*: a fixed
pure-Python spin workload is timed alongside the suite, and each
case's cycles/sec is also recorded normalized by that score
(simulated-cycles per calibration-op). Two hosts with different raw
speeds produce comparable normalized values, so a checked-in baseline
from one machine can gate CI runs on another.

``compare_entries`` implements the gate: any case whose normalized
cycles/sec drops more than ``threshold`` percent against the reference
(the per-case *median over the history*, robust to one bad entry) is a
regression, and the CLI exits non-zero — the perf-trend counterpart of
``repro diff``'s per-run artifact gate.
"""

import dataclasses
import json
import os
import platform
import socket
import statistics
import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.network.config import NetworkConfig
from repro.obs.artifacts import atomic_write
from repro.sim.runner import run_simulation

#: History schema version (bump on incompatible layout changes).
SCHEMA = 1

#: Spin iterations per calibration repeat (fixed workload).
CALIBRATION_OPS = 200_000


@dataclass
class BenchCase:
    """One standardized grid point of the suite."""

    name: str
    topology: str
    mesh_k: int
    allocator: str
    chaining: str
    rate: float
    warmup: int
    measure: int
    seed: int = 1
    #: Simulation core this case runs on ("reference" or "fast").
    backend: str = "reference"
    #: Digest stride (``--digest-every``); None runs digest-free. A
    #: digesting case measures the observability tax of the lockstep
    #: microscope's state hashing, gated like any other case.
    digest_every: Optional[int] = None

    def config(self):
        routing = "ugal" if self.topology == "fbfly" else "dor"
        return NetworkConfig(
            topology=self.topology, mesh_k=self.mesh_k, routing=routing,
            allocator=self.allocator, pc_allocator="islip1",
            chaining=self.chaining, seed=self.seed, backend=self.backend,
        )

    def fast_twin(self):
        """The same grid point on the fast core (name suffixed ``-fast``).

        Twin names join per-backend in the trend history; run_suite
        additionally records the twin/reference cycles/sec ratio under
        ``speedups`` so the fast core's advantage is tracked explicitly.
        """
        return dataclasses.replace(self, name=self.name + "-fast",
                                   backend="fast")


@dataclass
class ServeBenchCase(BenchCase):
    """A dispatch-inclusive grid point: one job per rate through
    :class:`repro.serve.ExperimentService` (fresh root, fork workers).

    Its cycles/sec includes every service cost — journal fsyncs, worker
    forks, heartbeat supervision, cache publication — so a regression
    in the scheduler shows up on this trend line while the plain
    simulation cases stay flat. ``benchmarks/test_serve_overhead.py``
    is the corresponding hard gate.
    """

    rates: tuple = (0.1, 0.2, 0.3, 0.35)
    workers: int = 2


@dataclass
class ShardBenchCase(BenchCase):
    """A sharded-run grid point: the same simulation executed by
    :func:`repro.parallel.shard_run` across ``shards`` row-band worker
    processes with conservative-lookahead boundary synchronization.

    Its cycles/sec includes the whole sharded runtime — fork, heartbeat
    supervision, window-cadence checkpoints, boundary exchange fsyncs
    and the final merge — and the measured entry additionally splits
    the overhead into ``exchange_seconds`` (boundary wait + publish)
    and ``dispatch_seconds`` (everything the coordinator adds beyond
    per-shard busy time), so a regression names its layer. The 1-shard
    case isolates the supervision + checkpoint tax from boundary
    synchrony, which only the multi-shard cases pay.
    """

    shards: int = 2


def default_suite(quick=False, scale=1.0):
    """The standardized suite: a topology x allocator x size grid.

    ``quick`` is the CI-sized subset; ``scale`` multiplies every phase
    length (tests shrink it, publication runs stretch it). Case names
    are stable identifiers — history comparison joins on them.
    """

    def cycles(warmup, measure):
        return max(50, int(warmup * scale)), max(100, int(measure * scale))

    def case(name, topology, mesh_k, allocator, chaining, rate,
             warmup, measure):
        w, m = cycles(warmup, measure)
        return BenchCase(name, topology, mesh_k, allocator, chaining, rate,
                         w, m)

    quick_cases = [
        case("mesh4-islip1-chain", "mesh", 4, "islip1", "any_input",
             0.4, 200, 800),
        case("mesh4-wavefront", "mesh", 4, "wavefront", "disabled",
             0.4, 200, 800),
        case("torus4-islip1-chain", "torus", 4, "islip1", "any_input",
             0.4, 200, 800),
        # Digest-overhead probe: same grid point as mesh4-islip1-chain
        # but hashing whole-network state every 64 cycles. Its trend
        # line bounds the lockstep microscope's observability tax.
        dataclasses.replace(
            case("mesh4-islip1-digest64", "mesh", 4, "islip1", "any_input",
                 0.4, 200, 800),
            digest_every=64,
        ),
        # Service-dispatch probe: the same mesh-4 grid point run as four
        # jobs through the experiment service, tracking scheduler +
        # journal + cache overhead as a trend line.
        ServeBenchCase("serve-dispatch", "mesh", 4, "islip1", "disabled",
                       0.3, *cycles(200, 800)),
        # Shard-scaling probe: one mesh-4 grid point executed by the
        # sharded runtime at 1, 2 and 4 row-band shards. The trio's
        # trend lines track the crash-tolerant runtime's cost: the
        # 1-shard case moves when supervision/checkpointing regresses,
        # the wider cases when boundary exchange does.
        ShardBenchCase("shard-scaling-1", "mesh", 4, "islip1", "disabled",
                       0.3, *cycles(100, 400), shards=1),
        ShardBenchCase("shard-scaling-2", "mesh", 4, "islip1", "disabled",
                       0.3, *cycles(100, 400), shards=2),
        ShardBenchCase("shard-scaling-4", "mesh", 4, "islip1", "disabled",
                       0.3, *cycles(100, 400), shards=4),
    ]
    # Fast-core twins of the reference cases whose reference-vs-fast
    # ratio the roadmap tracks (recorded under "speedups"). Each twin
    # runs immediately after its reference case so slow host drift over
    # the suite (shared runners) cancels out of the ratio instead of
    # accumulating between the pair's measurements.
    quick_cases.insert(1, quick_cases[0].fast_twin())
    quick_cases.insert(3, quick_cases[2].fast_twin())
    if quick:
        return quick_cases
    full_cases = [
        case("mesh8-islip1-chain", "mesh", 8, "islip1", "any_input",
             0.4, 300, 1200),
        case("mesh8-islip1", "mesh", 8, "islip1", "disabled",
             0.4, 300, 1200),
        case("mesh8-wavefront-chain", "mesh", 8, "wavefront", "any_input",
             0.4, 300, 1200),
        case("fbfly8-islip1-chain", "fbfly", 8, "islip1", "any_input",
             0.3, 300, 1200),
        case("cmesh8-islip1-chain", "cmesh", 8, "islip1", "any_input",
             0.3, 300, 1200),
    ]
    full_cases.insert(1, full_cases[0].fast_twin())
    full_cases.insert(3, full_cases[2].fast_twin())
    return quick_cases + full_cases


# ---------------------------------------------------------------------------
# measurement


def calibration_score(repeats=3):
    """Host speed on a fixed pure-Python workload, in ops/sec.

    Uses the best (fastest) repeat: calibration should capture what the
    host *can* do, not what a noisy neighbour let it do this instant.
    """
    best = float("inf")
    for _ in range(repeats):
        acc = 0
        start = time.perf_counter()
        for i in range(CALIBRATION_OPS):
            acc = (acc + i * 31) % 1_000_003
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return CALIBRATION_OPS / best if best > 0 else 0.0


def run_case(case, repeats=3):
    """Measure one case: warmup repeat discarded, median of the rest.

    Returns ``{"cycles_per_sec", "cycles", "wall_seconds", "repeats"}``
    (raw values; normalization happens at suite level).
    """
    samples = []
    cycles_run = 0
    for i in range(repeats + 1):
        start = time.perf_counter()
        result = run_simulation(
            case.config(), rate=case.rate, warmup=case.warmup,
            measure=case.measure, drain=0, seed=case.seed,
            digest_every=case.digest_every,
        )
        elapsed = time.perf_counter() - start
        cycles_run = result.cycles_run
        if i == 0:
            continue  # warmup repeat: imports, allocator tables, caches
        samples.append(elapsed)
    wall = statistics.median(samples)
    return {
        "cycles_per_sec": cycles_run / wall if wall > 0 else 0.0,
        "cycles": cycles_run,
        "wall_seconds": wall,
        "repeats": repeats,
    }


def run_serve_case(case, repeats=3):
    """Measure one :class:`ServeBenchCase`: jobs/sec through the service.

    Each repeat gets a fresh service root (no cache hits — every job
    simulates), so the measured wall time is simulation plus the full
    dispatch path. Reported cycles are the total simulated cycles
    across the fleet; the warmup repeat is discarded as usual.
    """
    import shutil
    import tempfile

    from repro.serve import ExperimentService
    from repro.serve.spec import spec_for

    config = case.config()
    samples = []
    cycles_run = 0
    for i in range(repeats + 1):
        root = tempfile.mkdtemp(prefix="repro-bench-serve-")
        try:
            start = time.perf_counter()
            with ExperimentService(root, workers=case.workers,
                                   heartbeat_every=200) as svc:
                for rate in case.rates:
                    svc.submit(spec_for(
                        config, rate=rate, label=f"bench{rate:g}",
                        warmup=case.warmup, measure=case.measure, drain=0,
                    ))
                svc.run(once=True, max_seconds=600,
                        install_signals=False)
                records = svc.jobs
            elapsed = time.perf_counter() - start
            done = [r for r in records.values() if r.state == "done"]
            if len(done) != len(case.rates):
                raise RuntimeError(
                    f"serve bench fleet incomplete: {len(done)}/"
                    f"{len(case.rates)} done"
                )
            cycles_run = sum(
                _artifact_cycles(root, rec) for rec in done
            )
        finally:
            shutil.rmtree(root, ignore_errors=True)
        if i == 0:
            continue  # warmup repeat: imports, fork machinery, caches
        samples.append(elapsed)
    wall = statistics.median(samples)
    return {
        "cycles_per_sec": cycles_run / wall if wall > 0 else 0.0,
        "cycles": cycles_run,
        "wall_seconds": wall,
        "repeats": repeats,
    }


def run_shard_case(case, repeats=3):
    """Measure one :class:`ShardBenchCase`: sharded cycles/sec.

    Each repeat runs :func:`repro.parallel.shard_run` into a fresh
    state directory. Besides the usual cycles/sec the measured entry
    carries ``exchange_seconds`` (per-shard boundary wait + publish
    time) and ``dispatch_seconds`` (wall time beyond average per-shard
    busy time: fork, supervision, final merge) so the trend history
    shows *where* a sharding regression lands, not just that one
    happened. Worker timers arrive summed across shards; dividing by
    the shard count yields the average per-process figure the wall
    clock is compared against.
    """
    import shutil
    import tempfile

    from repro.parallel import shard_run

    config = case.config()
    samples = []
    exchange = []
    dispatch = []
    cycles_run = 0
    for i in range(repeats + 1):
        out_dir = tempfile.mkdtemp(prefix="repro-bench-shard-")
        try:
            start = time.perf_counter()
            run = shard_run(
                config, rate=case.rate, warmup=case.warmup,
                measure=case.measure, drain=0, seed=case.seed,
                shards=case.shards, out_dir=out_dir,
            )
            elapsed = time.perf_counter() - start
        finally:
            shutil.rmtree(out_dir, ignore_errors=True)
        if run.status != "done":
            raise RuntimeError(
                f"shard bench run ended '{run.status}', expected 'done'"
            )
        if i == 0:
            continue  # warmup repeat: imports, fork machinery, caches
        cycles_run = run.cycles
        busy = sum(run.timers.values()) / case.shards
        exch = (run.timers.get("wait_seconds", 0.0)
                + run.timers.get("publish_seconds", 0.0))
        samples.append(elapsed)
        exchange.append(exch / case.shards)
        dispatch.append(max(0.0, elapsed - busy))
    wall = statistics.median(samples)
    return {
        "cycles_per_sec": cycles_run / wall if wall > 0 else 0.0,
        "cycles": cycles_run,
        "wall_seconds": wall,
        "repeats": repeats,
        "shards": case.shards,
        "exchange_seconds": statistics.median(exchange),
        "dispatch_seconds": statistics.median(dispatch),
    }


def _artifact_cycles(root, record):
    """cycles_run of one done job, read from its cached summary."""
    from repro.serve import load_result

    return load_result(root, record).cycles_run


def host_fingerprint():
    return {
        "host": socket.gethostname(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
    }


def run_paired_case(case, twin, repeats=3):
    """Measure a reference case and its fast twin interleaved.

    Repeats alternate reference/fast so slow host drift (shared
    runners, background load) hits both sides of each repeat pair
    about equally and cancels out of the ratio. Returns
    ``(ref_measured, twin_measured, speedup)`` where ``speedup`` is the
    median of per-repeat cycles/sec ratios — far tighter than a ratio
    of two medians measured minutes apart.
    """
    ref_samples = []
    twin_samples = []
    ratios = []
    ref_cycles = twin_cycles = 0
    for i in range(repeats + 1):
        start = time.perf_counter()
        result = run_simulation(
            case.config(), rate=case.rate, warmup=case.warmup,
            measure=case.measure, drain=0, seed=case.seed,
        )
        ref_elapsed = time.perf_counter() - start
        ref_cycles = result.cycles_run
        start = time.perf_counter()
        result = run_simulation(
            twin.config(), rate=twin.rate, warmup=twin.warmup,
            measure=twin.measure, drain=0, seed=twin.seed,
        )
        twin_elapsed = time.perf_counter() - start
        twin_cycles = result.cycles_run
        if i == 0:
            continue  # warmup repeat for both backends
        ref_samples.append(ref_elapsed)
        twin_samples.append(twin_elapsed)
        if ref_elapsed > 0 and twin_elapsed > 0:
            ratios.append(
                (twin_cycles / twin_elapsed) / (ref_cycles / ref_elapsed)
            )

    def measured(cycles, samples):
        wall = statistics.median(samples)
        return {
            "cycles_per_sec": cycles / wall if wall > 0 else 0.0,
            "cycles": cycles,
            "wall_seconds": wall,
            "repeats": repeats,
        }

    speedup = statistics.median(ratios) if ratios else 0.0
    return measured(ref_cycles, ref_samples), \
        measured(twin_cycles, twin_samples), speedup


def run_suite(suite=None, quick=False, scale=1.0, repeats=3,
              calibration_repeats=3, progress=None):
    """Run the suite; returns one history entry dict."""
    if suite is None:
        suite = default_suite(quick=quick, scale=scale)
    calibration = calibration_score(calibration_repeats)
    by_name = {case.name: case for case in suite}
    cases = {}
    paired_speedups = {}
    skip = set()

    def record(case, measured):
        # Simulated cycles/sec per million calibration ops/sec: a
        # dimensionless-ish speed that transfers across hosts.
        measured["normalized"] = (
            measured["cycles_per_sec"] / (calibration / 1e6)
            if calibration > 0 else 0.0
        )
        measured["backend"] = case.backend
        cases[case.name] = measured

    for case in suite:
        if case.name in skip:
            continue
        if isinstance(case, ShardBenchCase):
            if progress is not None:
                progress(case.name)
            record(case, run_shard_case(case, repeats=repeats))
            continue
        if isinstance(case, ServeBenchCase):
            if progress is not None:
                progress(case.name)
            record(case, run_serve_case(case, repeats=repeats))
            continue
        twin = by_name.get(case.name + "-fast")
        if twin is not None and case.backend == "reference":
            if progress is not None:
                progress(f"{case.name} (+fast twin, interleaved)")
            ref_measured, twin_measured, speedup = run_paired_case(
                case, twin, repeats=repeats
            )
            record(case, ref_measured)
            record(twin, twin_measured)
            paired_speedups[case.name] = speedup
            skip.add(twin.name)
            continue
        if progress is not None:
            progress(case.name)
        record(case, run_case(case, repeats=repeats))
    # Twinned cases measured separately (custom suites) fall back to
    # the ratio of medians; interleaved pairs override it with the
    # per-repeat median ratio.
    speedups = backend_speedups(cases)
    speedups.update(paired_speedups)
    return {
        "schema": SCHEMA,
        "time": time.time(),
        "suite": "quick" if quick else "full",
        "calibration": calibration,
        "host_info": host_fingerprint(),
        "cases": cases,
        "speedups": speedups,
    }


def backend_speedups(cases):
    """Fast-vs-reference cycles/sec ratio per twinned case.

    Keyed by the reference case name; a ``<name>-fast`` twin must be
    present in the same entry. Same-host, same-entry ratios need no
    calibration normalization.
    """
    speedups = {}
    for name, case in cases.items():
        twin = cases.get(name + "-fast")
        if twin is None or case.get("backend", "reference") != "reference":
            continue
        ref_cps = case.get("cycles_per_sec", 0.0)
        if ref_cps > 0:
            speedups[name] = twin.get("cycles_per_sec", 0.0) / ref_cps
    return speedups


# ---------------------------------------------------------------------------
# history


def host_slug():
    """Filesystem-safe host identifier for the history file name."""
    name = socket.gethostname().split(".")[0] or "host"
    return "".join(c if c.isalnum() or c in "-_" else "-" for c in name)


def default_history_path(directory="."):
    return os.path.join(directory, f"BENCH_{host_slug()}.json")


def load_history(path):
    """``{"schema", "entries": [...]}`` — empty history if missing."""
    if not os.path.exists(path):
        return {"schema": SCHEMA, "entries": []}
    with open(path) as fh:
        data = json.load(fh)
    if "entries" not in data:
        # A bare entry file (e.g. a checked-in baseline) is a
        # single-entry history.
        data = {"schema": data.get("schema", SCHEMA), "entries": [data]}
    return data


def append_history(path, entry):
    """Append ``entry`` to the history at ``path`` (atomic rewrite)."""
    history = load_history(path)
    history["entries"].append(entry)
    with atomic_write(path) as fh:
        json.dump(history, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return history


def reference_cases(history, metric="normalized"):
    """Per-case reference value: the median over all history entries.

    The median absorbs a single anomalous entry (thermal throttling, a
    busy CI runner) that a plain last-entry reference would anchor on.
    """
    series = {}
    for entry in history.get("entries", ()):
        for name, case in entry.get("cases", {}).items():
            if metric in case:
                series.setdefault(name, []).append(case[metric])
    return {
        name: statistics.median(values) for name, values in series.items()
    }


# ---------------------------------------------------------------------------
# comparison (the gate)


@dataclass
class BenchRow:
    case: str
    reference: float
    current: float

    @property
    def delta_pct(self):
        if self.reference <= 0:
            return 0.0
        return 100.0 * (self.current / self.reference - 1.0)


@dataclass
class BenchComparison:
    threshold: float
    metric: str
    rows: List[BenchRow] = field(default_factory=list)
    #: Cases present on only one side (never a regression by itself).
    unmatched: List[str] = field(default_factory=list)

    @property
    def regressions(self):
        return [r for r in self.rows if r.delta_pct < -self.threshold]

    @property
    def ok(self):
        return not self.regressions

    def to_dict(self):
        return {
            "threshold": self.threshold,
            "metric": self.metric,
            "ok": self.ok,
            "rows": [
                {
                    "case": r.case,
                    "reference": r.reference,
                    "current": r.current,
                    "delta_pct": r.delta_pct,
                    "regression": r.delta_pct < -self.threshold,
                }
                for r in self.rows
            ],
            "unmatched": list(self.unmatched),
        }


def compare_entries(entry, reference, threshold=15.0, metric="normalized"):
    """Gate ``entry`` against per-case ``reference`` values.

    ``reference`` is ``{case: value}`` (see :func:`reference_cases`).
    A case is a regression when its ``metric`` fell more than
    ``threshold`` percent below the reference; improvements and new or
    vanished cases never trip the gate.
    """
    comparison = BenchComparison(threshold=threshold, metric=metric)
    cases = entry.get("cases", {})
    for name in sorted(set(cases) | set(reference)):
        if name not in cases or name not in reference:
            comparison.unmatched.append(name)
            continue
        comparison.rows.append(
            BenchRow(name, reference[name], cases[name].get(metric, 0.0))
        )
    return comparison


# ---------------------------------------------------------------------------
# formatting


def format_entry(entry):
    info = entry.get("host_info", {})
    lines = [
        f"bench suite '{entry.get('suite', '?')}' on"
        f" {info.get('host', '?')} (python {info.get('python', '?')},"
        f" {info.get('cpus', '?')} cpus)",
        f"calibration: {entry.get('calibration', 0.0):,.0f} ops/sec",
        "",
        f"  {'case':<24} {'cycles/sec':>12} {'normalized':>11} {'wall':>8}",
    ]
    for name, case in sorted(entry.get("cases", {}).items()):
        lines.append(
            f"  {name:<24} {case['cycles_per_sec']:>12,.0f}"
            f" {case.get('normalized', 0.0):>11.4f}"
            f" {case['wall_seconds']:>7.2f}s"
        )
    speedups = entry.get("speedups") or {}
    if speedups:
        lines.append("")
        for name, ratio in sorted(speedups.items()):
            lines.append(
                f"  speedup {name:<20} {ratio:>5.2f}x (fast vs reference)"
            )
    return "\n".join(lines) + "\n"


def format_comparison(comparison):
    lines = [
        f"trend gate: metric={comparison.metric},"
        f" threshold={comparison.threshold:g}%",
        f"  {'case':<24} {'reference':>11} {'current':>11} {'delta':>8}",
    ]
    for row in comparison.rows:
        flag = "  REGRESSION" if row.delta_pct < -comparison.threshold else ""
        lines.append(
            f"  {row.case:<24} {row.reference:>11.4f} {row.current:>11.4f}"
            f" {row.delta_pct:>+7.1f}%{flag}"
        )
    for name in comparison.unmatched:
        lines.append(f"  {name:<24} (no common reference; skipped)")
    lines.append(
        "gate: OK" if comparison.ok
        else f"gate: {len(comparison.regressions)} regression(s)"
    )
    return "\n".join(lines) + "\n"
