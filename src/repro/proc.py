"""Process-supervision primitives shared by repro.serve and repro.parallel.

Extracted from ``repro.serve.supervisor`` so any subsystem that runs
supervised child processes — the experiment service's job workers, the
sharded-simulation shard workers — uses one implementation of the
file-based signalling pattern:

- **PDEATHSIG** (:func:`die_with_parent`): children die with their
  supervisor instead of orphaning (Linux, best effort).
- **Confirmed kill** (:func:`confirmed_kill`): SIGTERM → grace →
  SIGKILL → join, so a lease/window is only re-queued after its worker
  is provably gone and two attempts never overlap.
- **Atomic outcomes** (:func:`write_outcome` / :func:`read_outcome`):
  the child's last act is one ``atomic_write`` of a JSON dict; present
  and ``ok`` means success, present and not ``ok`` carries the
  diagnostic, absent after process exit means the child died hard.
- **Liveness probes** (:func:`alive_pid`, :func:`file_age`): heartbeat
  files are fsynced by the child; their mtime age is the lease signal.
"""

import errno
import json
import os
import signal
import sys
import time


def die_with_parent():
    """Arm PR_SET_PDEATHSIG so this process dies with its parent.

    Best effort and Linux-only: on other platforms (or sandboxed
    processes) children may orphan on supervisor SIGKILL, which is safe
    for both users — cache publication and exchange-file publication
    are atomic and idempotent.
    """
    if not sys.platform.startswith("linux"):
        return
    try:
        import ctypes

        libc = ctypes.CDLL(None, use_errno=True)
        libc.prctl(1, int(signal.SIGKILL), 0, 0, 0)  # PR_SET_PDEATHSIG
    except Exception:
        pass


def confirmed_kill(process, grace=2.0):
    """Ensure ``process`` is dead before returning (escalate to SIGKILL).

    The supervision invariant hangs off this: a lease is only re-queued
    after its worker is *confirmed* gone, so two attempts of one job
    can never run concurrently. SIGTERM first (grace seconds), then
    SIGKILL — which cannot be caught — then a blocking join.
    """
    if process.is_alive():
        try:
            process.terminate()
        except OSError as exc:  # already reaped elsewhere
            if exc.errno != errno.ESRCH:
                raise
        process.join(grace)
    if process.is_alive():
        process.kill()
        process.join()
    else:
        process.join()


def alive_pid(pid):
    """True when ``pid`` names a live process (used for lock takeover)."""
    if pid is None or pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def read_outcome(path):
    """The worker's outcome dict, or None if absent/unreadable.

    Outcomes are written with ``atomic_write``, so an existing file is
    always complete; unreadable covers only foreign debris.
    """
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None
    return data if isinstance(data, dict) else None


def write_outcome(path, **fields):
    """Atomically (and durably) publish a worker outcome file."""
    from repro.obs.artifacts import atomic_write

    with atomic_write(path) as fh:
        json.dump(fields, fh, separators=(",", ":"))
        fh.write("\n")


def file_age(path, now=None):
    """Seconds since ``path`` was last touched, or None if unreadable."""
    try:
        mtime = os.stat(path).st_mtime
    except OSError:
        return None
    return (time.time() if now is None else now) - mtime
