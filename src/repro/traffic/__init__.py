"""Synthetic traffic: spatial patterns and injection processes."""

from repro.traffic.patterns import (
    TrafficPattern,
    UniformRandom,
    RandomPermutation,
    Shuffle,
    BitComplement,
    Tornado,
    Transpose,
    Neighbor,
    Hotspot,
    build_pattern,
    MESH_PATTERNS,
    FBFLY_PATTERNS,
)
from repro.traffic.injection import (
    PacketLengthDistribution,
    FixedLength,
    BimodalLength,
    BernoulliInjector,
    MarkovBurstInjector,
)

__all__ = [
    "TrafficPattern",
    "UniformRandom",
    "RandomPermutation",
    "Shuffle",
    "BitComplement",
    "Tornado",
    "Transpose",
    "Neighbor",
    "Hotspot",
    "build_pattern",
    "MESH_PATTERNS",
    "FBFLY_PATTERNS",
    "PacketLengthDistribution",
    "FixedLength",
    "BimodalLength",
    "BernoulliInjector",
    "MarkovBurstInjector",
]
