"""Injection processes and packet length distributions.

Injection rates throughout the paper (and this reproduction) are given
in flits per terminal per cycle. A Bernoulli process generates packets
with probability ``rate / mean_packet_length`` per cycle so the offered
load in flits matches the requested rate.
"""

from abc import ABC, abstractmethod

from repro.core.serialization import rng_state_to_json, set_rng_state
from repro.network.flit import Packet
from repro.obs.trace import NULL_TRACE


class PacketLengthDistribution(ABC):
    @abstractmethod
    def sample(self, rng):
        """Draw a packet length in flits."""

    @property
    @abstractmethod
    def mean(self):
        """Expected length in flits."""


class FixedLength(PacketLengthDistribution):
    def __init__(self, length):
        if length < 1:
            raise ValueError(f"packet length must be >= 1, got {length}")
        self.length = length

    def sample(self, rng):
        return self.length

    @property
    def mean(self):
        return float(self.length)


class BimodalLength(PacketLengthDistribution):
    """Equal amounts of short and long packets (Section 4.4).

    The paper's request-reply example uses single-flit short packets
    and five-flit long packets, mixed 50/50 *by packet count*.
    """

    def __init__(self, short=1, long=5, short_fraction=0.5):
        if short < 1 or long < 1:
            raise ValueError("packet lengths must be >= 1")
        if not 0.0 <= short_fraction <= 1.0:
            raise ValueError("short_fraction must be in [0, 1]")
        self.short = short
        self.long = long
        self.short_fraction = short_fraction

    def sample(self, rng):
        return self.short if rng.random() < self.short_fraction else self.long

    @property
    def mean(self):
        return self.short * self.short_fraction + self.long * (1 - self.short_fraction)


class BernoulliInjector:
    """Per-terminal Bernoulli packet generation at a target flit rate."""

    def __init__(self, num_terminals, pattern, rate, lengths, rng):
        if rate < 0:
            raise ValueError(f"injection rate must be >= 0, got {rate}")
        self.num_terminals = num_terminals
        self.pattern = pattern
        self.rate = rate
        self.lengths = lengths
        self.rng = rng
        self.packet_probability = min(1.0, rate / lengths.mean)
        self.enabled = True
        #: Event bus; the simulation driver points this at the
        #: network's bus so packet creation shows up in traces.
        self.trace = NULL_TRACE

    def state_dict(self):
        """Serialize injection state.

        The RNG is shared with the traffic pattern (run_simulation
        builds both from one ``traffic_rng``), so restoring it here
        restores the pattern's stream too.
        """
        return {"rng": rng_state_to_json(self.rng), "enabled": self.enabled}

    def load_state(self, state):
        set_rng_state(self.rng, state["rng"])
        self.enabled = state["enabled"]

    def _emit(self, src, cycle, packets):
        size = self.lengths.sample(self.rng)
        dest = self.pattern.dest(src, self.rng)
        if dest != src:  # self-loops never enter the network
            packet = Packet(src, dest, size, cycle)
            packets.append(packet)
            tr = self.trace
            if tr.active:
                tr.emit(
                    "packet_created", cycle, pid=packet.pid, src=src,
                    dest=dest, size=size,
                )

    def generate(self, cycle):
        """Packets created at this cycle, as a list (may be empty)."""
        if not self.enabled or self.packet_probability == 0.0:
            return []
        packets = []
        for src in range(self.num_terminals):
            if self.rng.random() < self.packet_probability:
                self._emit(src, cycle, packets)
        return packets


class MarkovBurstInjector(BernoulliInjector):
    """Two-state Markov-modulated (on/off) bursty injection.

    Each terminal independently alternates between an ON state, where
    it injects packets with probability ``p_on`` per cycle, and an OFF
    state, where it injects nothing. State transition probabilities are
    derived from the requested average rate and the configured mean
    burst length, the standard MMP model BookSim uses for bursty
    traffic. The long-run flit rate matches ``rate``; burstiness is what
    stresses allocators the way the paper's application phases do.
    """

    def __init__(self, num_terminals, pattern, rate, lengths, rng,
                 burst_length=32, p_on=1.0):
        super().__init__(num_terminals, pattern, rate, lengths, rng)
        if burst_length < 1:
            raise ValueError("burst_length must be >= 1")
        if not 0.0 < p_on <= 1.0:
            raise ValueError("p_on must be in (0, 1]")
        packet_rate = min(p_on, rate / lengths.mean)
        duty = packet_rate / p_on  # fraction of time spent ON
        if duty >= 1.0:
            duty = 1.0
        self.p_on = p_on
        #: P(ON -> OFF): mean ON period is burst_length cycles.
        self.p_exit_on = 1.0 / burst_length
        #: P(OFF -> ON) chosen so the stationary ON fraction equals duty.
        if duty >= 1.0:
            self.p_enter_on = 1.0
        else:
            self.p_enter_on = self.p_exit_on * duty / (1.0 - duty)
        self._on = [self.rng.random() < duty for _ in range(num_terminals)]

    def state_dict(self):
        state = super().state_dict()
        state["on"] = list(self._on)
        return state

    def load_state(self, state):
        super().load_state(state)
        self._on = list(state["on"])

    def generate(self, cycle):
        if not self.enabled or self.packet_probability == 0.0:
            return []
        packets = []
        for src in range(self.num_terminals):
            if self._on[src]:
                if self.rng.random() < self.p_on:
                    self._emit(src, cycle, packets)
                if self.rng.random() < self.p_exit_on:
                    self._on[src] = False
            elif self.rng.random() < min(1.0, self.p_enter_on):
                self._on[src] = True
        return packets
