"""Spatial traffic patterns (Dally & Towles, chapter 3; BookSim names).

The paper evaluates uniform random, random permutation, shuffle, bit
complement and tornado on the mesh, adding transpose and neighbor on
the FBFly (Section 3). Patterns are defined over terminal indices; the
digit/bit-based patterns view the 64 terminals as an 8x8 logical grid
(or a 6-bit address), matching BookSim's conventions.
"""

import math
from abc import ABC, abstractmethod


class TrafficPattern(ABC):
    """Maps a source terminal to a destination terminal."""

    def __init__(self, num_terminals):
        if num_terminals < 2:
            raise ValueError("need at least 2 terminals")
        self.num_terminals = num_terminals

    @abstractmethod
    def dest(self, src, rng):
        """Destination terminal for a packet from ``src``."""

    def is_self_loop_free(self):
        """True if dest(s) != s for every source (used by tests)."""
        return True


class UniformRandom(TrafficPattern):
    """Each packet goes to a uniformly random other terminal."""

    def dest(self, src, rng):
        d = rng.randrange(self.num_terminals - 1)
        return d if d < src else d + 1

    def is_self_loop_free(self):
        return True


class RandomPermutation(TrafficPattern):
    """A fixed random permutation, chosen once per simulation seed."""

    def __init__(self, num_terminals, rng):
        super().__init__(num_terminals)
        while True:
            perm = list(range(num_terminals))
            rng.shuffle(perm)
            if all(perm[i] != i for i in range(num_terminals)):
                break
        self.perm = perm

    def dest(self, src, rng):
        return self.perm[src]


class _GridPattern(TrafficPattern):
    """Base for patterns defined on a sqrt(N) x sqrt(N) logical grid."""

    def __init__(self, num_terminals):
        super().__init__(num_terminals)
        k = int(round(math.sqrt(num_terminals)))
        if k * k != num_terminals:
            raise ValueError(f"{type(self).__name__} needs a square terminal count")
        self.k = k

    def _coords(self, t):
        return t % self.k, t // self.k

    def _terminal(self, x, y):
        return y * self.k + x


class Shuffle(TrafficPattern):
    """Bit shuffle: rotate the terminal address left by one bit."""

    def __init__(self, num_terminals):
        super().__init__(num_terminals)
        bits = num_terminals.bit_length() - 1
        if 1 << bits != num_terminals:
            raise ValueError("shuffle needs a power-of-two terminal count")
        self.bits = bits

    def dest(self, src, rng):
        mask = self.num_terminals - 1
        return ((src << 1) | (src >> (self.bits - 1))) & mask

    def is_self_loop_free(self):
        return False  # 0 and all-ones map to themselves


class BitComplement(TrafficPattern):
    """Destination is the bitwise complement of the source address."""

    def __init__(self, num_terminals):
        super().__init__(num_terminals)
        if num_terminals & (num_terminals - 1):
            raise ValueError("bitcomp needs a power-of-two terminal count")

    def dest(self, src, rng):
        return ~src & (self.num_terminals - 1)


class Tornado(_GridPattern):
    """Each grid dimension shifts by ceil(k/2) - 1 (Dally & Towles)."""

    def dest(self, src, rng):
        x, y = self._coords(src)
        shift = (self.k + 1) // 2 - 1
        return self._terminal((x + shift) % self.k, (y + shift) % self.k)

    def is_self_loop_free(self):
        return (self.k + 1) // 2 - 1 != 0


class Transpose(_GridPattern):
    """(x, y) -> (y, x) on the logical grid."""

    def dest(self, src, rng):
        x, y = self._coords(src)
        return self._terminal(y, x)

    def is_self_loop_free(self):
        return False  # the diagonal maps to itself


class Neighbor(_GridPattern):
    """Each grid dimension shifts by +1."""

    def dest(self, src, rng):
        x, y = self._coords(src)
        return self._terminal((x + 1) % self.k, (y + 1) % self.k)


class Hotspot(TrafficPattern):
    """Uniform background with a fraction of traffic aimed at hotspots.

    A standard NoC stress pattern (not in the paper's set, provided for
    ablations): with probability ``fraction`` a packet targets one of
    the ``hotspots``; otherwise the destination is uniform random. This
    is the traffic character that produces the tree saturation the
    paper discusses around Figure 5.
    """

    def __init__(self, num_terminals, hotspots=(0,), fraction=0.2):
        super().__init__(num_terminals)
        if not hotspots:
            raise ValueError("need at least one hotspot")
        for h in hotspots:
            if not 0 <= h < num_terminals:
                raise ValueError(f"hotspot {h} out of range")
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        self.hotspots = tuple(hotspots)
        self.fraction = fraction
        self._uniform = UniformRandom(num_terminals)

    def dest(self, src, rng):
        if rng.random() < self.fraction:
            choice = self.hotspots[rng.randrange(len(self.hotspots))]
            if choice != src:
                return choice
        return self._uniform.dest(src, rng)

    def is_self_loop_free(self):
        return True


#: Pattern sets used in the paper's mesh and FBFly studies (Section 3).
MESH_PATTERNS = ("uniform", "permutation", "shuffle", "bitcomp", "tornado")
FBFLY_PATTERNS = MESH_PATTERNS + ("transpose", "neighbor")


def build_pattern(name, num_terminals, rng):
    """Construct a pattern by its BookSim-style name."""
    name = name.lower()
    if name == "hotspot":
        # Default hotspot config: 10% of traffic to each of 2 corners.
        return Hotspot(num_terminals, hotspots=(0, num_terminals - 1),
                       fraction=0.2)
    if name == "uniform":
        return UniformRandom(num_terminals)
    if name == "permutation":
        return RandomPermutation(num_terminals, rng)
    if name == "shuffle":
        return Shuffle(num_terminals)
    if name == "bitcomp":
        return BitComplement(num_terminals)
    if name == "tornado":
        return Tornado(num_terminals)
    if name == "transpose":
        return Transpose(num_terminals)
    if name == "neighbor":
        return Neighbor(num_terminals)
    raise ValueError(f"unknown traffic pattern {name!r}")
