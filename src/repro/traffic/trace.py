"""Packet-trace recording and replay.

A trace is a list of (cycle, src, dest, size) packet creations. Traces
decouple workload generation from network evaluation: record the
coherence traffic of one CMP run (expensive: cores + caches +
directory), then replay it against many router configurations
(cheap: network only). Replay is open-loop — the trace's timing does
not react to network backpressure — which is the standard trade-off of
trace-driven NoC evaluation and is documented wherever results from it
are reported.
"""

from dataclasses import dataclass
from typing import List

from repro.network.flit import Packet


@dataclass(frozen=True)
class TraceEntry:
    cycle: int
    src: int
    dest: int
    size: int

    def to_line(self):
        return f"{self.cycle} {self.src} {self.dest} {self.size}"

    @classmethod
    def from_line(cls, line):
        cycle, src, dest, size = (int(tok) for tok in line.split())
        return cls(cycle, src, dest, size)


class TraceRecorder:
    """Collects packet creations; install with :meth:`attach`."""

    def __init__(self):
        self.entries: List[TraceEntry] = []

    def attach(self, network):
        """Wrap ``network.inject`` to record every packet."""
        original = network.inject

        def recording_inject(packet):
            self.entries.append(
                TraceEntry(network.cycle, packet.src, packet.dest, packet.size)
            )
            original(packet)

        network.inject = recording_inject
        return self

    def save(self, path):
        with open(path, "w") as fh:
            for entry in self.entries:
                fh.write(entry.to_line() + "\n")

    @staticmethod
    def load(path) -> List[TraceEntry]:
        with open(path) as fh:
            return [TraceEntry.from_line(line) for line in fh if line.strip()]


class TraceInjector:
    """Replays a trace; drop-in for BernoulliInjector in SimulationRun.

    Entries must be sorted by cycle (``sorted=True`` validates).
    ``time_offset`` shifts the whole trace, so a trace recorded after a
    warmup can be replayed from cycle zero.
    """

    def __init__(self, entries, num_terminals, time_offset=None):
        self.entries = list(entries)
        for a, b in zip(self.entries, self.entries[1:]):
            if b.cycle < a.cycle:
                raise ValueError("trace entries must be sorted by cycle")
        for e in self.entries:
            if not (0 <= e.src < num_terminals and 0 <= e.dest < num_terminals):
                raise ValueError(f"trace entry out of range: {e}")
        if time_offset is None:
            time_offset = -self.entries[0].cycle if self.entries else 0
        self.time_offset = time_offset
        self.num_terminals = num_terminals
        self._next = 0
        self.enabled = True
        #: Mean flits/terminal/cycle over the trace span (for reports).
        self.rate = self._mean_rate()

    def _mean_rate(self):
        if not self.entries:
            return 0.0
        span = self.entries[-1].cycle - self.entries[0].cycle + 1
        flits = sum(e.size for e in self.entries)
        return flits / span / self.num_terminals

    @property
    def exhausted(self):
        return self._next >= len(self.entries)

    def generate(self, cycle):
        if not self.enabled:
            return []
        packets = []
        target = cycle - self.time_offset
        while self._next < len(self.entries):
            entry = self.entries[self._next]
            if entry.cycle > target:
                break
            packets.append(Packet(entry.src, entry.dest, entry.size, cycle))
            self._next += 1
        return packets


def record_cmp_trace(workload, net_config, cycles, seed=1):
    """Run the CMP for ``cycles`` and return its network packet trace."""
    from repro.cmp.system import CMPSystem

    system = CMPSystem(workload, net_config, seed=seed)
    recorder = TraceRecorder().attach(system.network)
    system.run(cycles)
    return recorder.entries
