"""Concentrated 2D mesh (CMesh).

A mesh with ``concentration`` terminals per router — the standard way
to cut router count for many-core CMPs (Balfour & Dally, ICS'06).
Useful here for chaining studies at higher per-port load: with c
terminals per router, the injection ports see c-fold traffic and the
allocator problem is denser.

Port convention: 0-3 are the mesh directions (as in
:mod:`repro.topology.mesh`), ports 4 .. 4+c-1 are terminals.
"""

from typing import Optional

from repro.topology.base import Link, Topology
from repro.topology.mesh import (
    PORT_XMINUS,
    PORT_XPLUS,
    PORT_YMINUS,
    PORT_YPLUS,
)


class CMesh2D(Topology):
    """k x k mesh with ``concentration`` terminals per router."""

    CHANNEL_DELAY = 1
    NUM_DIRECTIONS = 4

    def __init__(self, k: int, concentration: int = 4):
        if k < 2:
            raise ValueError(f"cmesh radix k must be >= 2, got {k}")
        if concentration < 1:
            raise ValueError("concentration must be >= 1")
        self.k = k
        self.concentration = concentration

    @property
    def num_routers(self):
        return self.k * self.k

    @property
    def num_terminals(self):
        return self.num_routers * self.concentration

    def radix(self, router):
        return self.NUM_DIRECTIONS + self.concentration

    def coords(self, router):
        return router % self.k, router // self.k

    def router_at(self, x, y):
        return y * self.k + x

    def link(self, router, port) -> Optional[Link]:
        if port >= self.NUM_DIRECTIONS:
            return None  # terminal port
        x, y = self.coords(router)
        if port == PORT_XPLUS and x + 1 < self.k:
            return Link(self.router_at(x + 1, y), PORT_XMINUS, self.CHANNEL_DELAY)
        if port == PORT_XMINUS and x - 1 >= 0:
            return Link(self.router_at(x - 1, y), PORT_XPLUS, self.CHANNEL_DELAY)
        if port == PORT_YPLUS and y + 1 < self.k:
            return Link(self.router_at(x, y + 1), PORT_YMINUS, self.CHANNEL_DELAY)
        if port == PORT_YMINUS and y - 1 >= 0:
            return Link(self.router_at(x, y - 1), PORT_YPLUS, self.CHANNEL_DELAY)
        return None

    def terminal_attachment(self, terminal):
        return (
            terminal // self.concentration,
            self.NUM_DIRECTIONS + terminal % self.concentration,
        )

    def is_terminal_port(self, router, port):
        return port >= self.NUM_DIRECTIONS

    def terminal_at(self, router, port):
        if port >= self.NUM_DIRECTIONS:
            return router * self.concentration + (port - self.NUM_DIRECTIONS)
        return None
