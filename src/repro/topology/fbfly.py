"""2D flattened butterfly (Kim, Dally & Abts, 2007).

The paper's FBFly is 4x4 routers with 4 terminals each (64 terminals,
10-port routers). Within a row (and within a column) every router pair
is directly connected. Channel delays follow Section 3: injection and
ejection channels take one cycle; inter-router channels take two, four
or six cycles for hop distances of one, two or three respectively
("short, medium and long channels").

Port convention for an R x C FBFly with concentration c:
  ports [0, c)                      terminals
  ports [c, c + C - 1)              row links, ordered by destination x
  ports [c + C - 1, c + C - 1 + R - 1)  column links, ordered by dest y
"""

from typing import Optional

from repro.topology.base import Link, Topology

#: Hop distance -> channel delay (Section 3).
DISTANCE_DELAYS = {1: 2, 2: 4, 3: 6}


def distance_delay(distance: int) -> int:
    """Channel delay for an intra-dimension hop distance."""
    if distance in DISTANCE_DELAYS:
        return DISTANCE_DELAYS[distance]
    # Beyond the paper's 4x4 design point, extend the linear trend.
    return 2 * distance


class FlattenedButterfly(Topology):
    """rows x cols flattened butterfly with per-router concentration."""

    def __init__(self, rows: int, cols: int, concentration: int):
        if rows < 2 or cols < 2:
            raise ValueError("FBFly needs at least 2 rows and 2 cols")
        if concentration < 1:
            raise ValueError("concentration must be >= 1")
        self.rows = rows
        self.cols = cols
        self.concentration = concentration

    @property
    def num_routers(self):
        return self.rows * self.cols

    @property
    def num_terminals(self):
        return self.num_routers * self.concentration

    def radix(self, router):
        return self.concentration + (self.cols - 1) + (self.rows - 1)

    def coords(self, router):
        return router % self.cols, router // self.cols

    def router_at(self, x, y):
        return y * self.cols + x

    def row_port(self, router, dest_x):
        """The port on ``router`` leading to the router at column dest_x."""
        x, _ = self.coords(router)
        if dest_x == x or not 0 <= dest_x < self.cols:
            raise ValueError(f"bad row destination x={dest_x} from x={x}")
        # Row ports are ordered by destination x, skipping our own column.
        offset = dest_x if dest_x < x else dest_x - 1
        return self.concentration + offset

    def col_port(self, router, dest_y):
        """The port on ``router`` leading to the router at row dest_y."""
        _, y = self.coords(router)
        if dest_y == y or not 0 <= dest_y < self.rows:
            raise ValueError(f"bad column destination y={dest_y} from y={y}")
        offset = dest_y if dest_y < y else dest_y - 1
        return self.concentration + (self.cols - 1) + offset

    def link(self, router, port) -> Optional[Link]:
        c = self.concentration
        x, y = self.coords(router)
        if port < c:
            return None  # terminal port
        row_ports = self.cols - 1
        if port < c + row_ports:
            offset = port - c
            dest_x = offset if offset < x else offset + 1
            dest = self.router_at(dest_x, y)
            return Link(dest, self.row_port(dest, x), distance_delay(abs(dest_x - x)))
        offset = port - c - row_ports
        dest_y = offset if offset < y else offset + 1
        dest = self.router_at(x, dest_y)
        return Link(dest, self.col_port(dest, y), distance_delay(abs(dest_y - y)))

    def terminal_attachment(self, terminal):
        return terminal // self.concentration, terminal % self.concentration

    def is_terminal_port(self, router, port):
        return port < self.concentration

    def terminal_at(self, router, port):
        if port < self.concentration:
            return router * self.concentration + port
        return None
