"""Topology interface.

A topology defines routers, their port maps, terminal attachment points
and channel delays. Ports on a router are numbered 0..radix-1; each is
either a terminal port (injection/ejection) or an inter-router link.
"""

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class Link:
    """A directed inter-router connection leaving ``(router, port)``."""

    dest_router: int
    dest_port: int
    delay: int


class Topology(ABC):
    """Abstract topology."""

    @property
    @abstractmethod
    def num_routers(self) -> int: ...

    @property
    @abstractmethod
    def num_terminals(self) -> int: ...

    @abstractmethod
    def radix(self, router: int) -> int:
        """Number of ports on a router (uniform in both our topologies)."""

    @abstractmethod
    def link(self, router: int, port: int) -> Optional[Link]:
        """The link leaving (router, port), or None for terminal/edge ports."""

    @abstractmethod
    def terminal_attachment(self, terminal: int):
        """Return (router, port) where a terminal injects/ejects."""

    @abstractmethod
    def is_terminal_port(self, router: int, port: int) -> bool: ...

    @abstractmethod
    def terminal_at(self, router: int, port: int) -> Optional[int]:
        """The terminal attached at (router, port), or None."""

    def validate(self):
        """Sanity-check the port maps; raises AssertionError on errors."""
        seen = set()
        for t in range(self.num_terminals):
            r, p = self.terminal_attachment(t)
            assert self.is_terminal_port(r, p), (t, r, p)
            assert self.terminal_at(r, p) == t
            assert (r, p) not in seen, f"terminal port reused: {(r, p)}"
            seen.add((r, p))
        for r in range(self.num_routers):
            for p in range(self.radix(r)):
                lnk = self.link(r, p)
                if lnk is None:
                    continue
                assert not self.is_terminal_port(r, p)
                # Links must be symmetric: the far end points back here.
                back = self.link(lnk.dest_router, lnk.dest_port)
                assert back is not None, (r, p, lnk)
                assert (back.dest_router, back.dest_port) == (r, p), (r, p, lnk, back)
                assert back.delay == lnk.delay
