"""2D torus topology (k-ary 2-cube).

Not part of the paper's evaluation, but the natural companion to the
mesh for studying packet chaining under wraparound routing (tornado
traffic is the classic torus adversary). Same port convention as the
mesh; every direction port is connected (wraparound links close the
rings). Deadlock freedom requires dateline VC classes — see
:class:`repro.routing.torus_dor.DORTorus`.
"""

from typing import Optional

from repro.topology.base import Link, Topology
from repro.topology.mesh import (
    PORT_TERMINAL,
    PORT_XMINUS,
    PORT_XPLUS,
    PORT_YMINUS,
    PORT_YPLUS,
)


class Torus2D(Topology):
    """k x k 2D torus, one terminal per router, 1-cycle channels."""

    CHANNEL_DELAY = 1

    def __init__(self, k: int):
        if k < 3:
            raise ValueError(f"torus radix k must be >= 3, got {k}")
        self.k = k

    @property
    def num_routers(self):
        return self.k * self.k

    @property
    def num_terminals(self):
        return self.k * self.k

    def radix(self, router):
        return 5

    def coords(self, router):
        return router % self.k, router // self.k

    def router_at(self, x, y):
        return y * self.k + x

    def link(self, router, port) -> Optional[Link]:
        x, y = self.coords(router)
        k = self.k
        if port == PORT_XPLUS:
            return Link(self.router_at((x + 1) % k, y), PORT_XMINUS, self.CHANNEL_DELAY)
        if port == PORT_XMINUS:
            return Link(self.router_at((x - 1) % k, y), PORT_XPLUS, self.CHANNEL_DELAY)
        if port == PORT_YPLUS:
            return Link(self.router_at(x, (y + 1) % k), PORT_YMINUS, self.CHANNEL_DELAY)
        if port == PORT_YMINUS:
            return Link(self.router_at(x, (y - 1) % k), PORT_YPLUS, self.CHANNEL_DELAY)
        return None

    def terminal_attachment(self, terminal):
        return terminal, PORT_TERMINAL

    def is_terminal_port(self, router, port):
        return port == PORT_TERMINAL

    def terminal_at(self, router, port):
        return router if port == PORT_TERMINAL else None
