"""Network topologies.

The paper's two evaluation topologies (8x8 2D mesh and 4x4 2D flattened
butterfly) plus two companions for extension studies: the 2D torus
(wraparound, dateline VCs) and the concentrated mesh.
"""

from repro.topology.base import Topology, Link
from repro.topology.mesh import Mesh2D
from repro.topology.fbfly import FlattenedButterfly
from repro.topology.torus import Torus2D
from repro.topology.cmesh import CMesh2D

__all__ = [
    "Topology",
    "Link",
    "Mesh2D",
    "FlattenedButterfly",
    "Torus2D",
    "CMesh2D",
    "build_topology",
]


def build_topology(config):
    """Construct the topology described by a NetworkConfig."""
    if config.topology == "mesh":
        return Mesh2D(config.mesh_k)
    if config.topology == "torus":
        return Torus2D(config.mesh_k)
    if config.topology == "cmesh":
        return CMesh2D(config.mesh_k, config.cmesh_concentration)
    if config.topology == "fbfly":
        return FlattenedButterfly(
            config.fbfly_rows, config.fbfly_cols, config.fbfly_concentration
        )
    raise ValueError(f"unknown topology {config.topology!r}")
