"""2D mesh topology (the paper's 8x8 mesh, one terminal per router).

Port convention: 0 = +x (east), 1 = -x (west), 2 = +y (south, toward
higher y), 3 = -y (north), 4 = terminal. All channels have a one-cycle
delay (Section 3). Edge routers simply have no link on the ports that
would leave the mesh; DOR never routes toward them.
"""

from typing import Optional

from repro.topology.base import Link, Topology

PORT_XPLUS = 0
PORT_XMINUS = 1
PORT_YPLUS = 2
PORT_YMINUS = 3
PORT_TERMINAL = 4


class Mesh2D(Topology):
    """k x k 2D mesh with one terminal per router and 1-cycle channels."""

    CHANNEL_DELAY = 1

    def __init__(self, k: int):
        if k < 2:
            raise ValueError(f"mesh radix k must be >= 2, got {k}")
        self.k = k

    @property
    def num_routers(self):
        return self.k * self.k

    @property
    def num_terminals(self):
        return self.k * self.k

    def radix(self, router):
        return 5

    def coords(self, router):
        """(x, y) coordinates of a router."""
        return router % self.k, router // self.k

    def router_at(self, x, y):
        return y * self.k + x

    def link(self, router, port) -> Optional[Link]:
        x, y = self.coords(router)
        if port == PORT_XPLUS and x + 1 < self.k:
            return Link(self.router_at(x + 1, y), PORT_XMINUS, self.CHANNEL_DELAY)
        if port == PORT_XMINUS and x - 1 >= 0:
            return Link(self.router_at(x - 1, y), PORT_XPLUS, self.CHANNEL_DELAY)
        if port == PORT_YPLUS and y + 1 < self.k:
            return Link(self.router_at(x, y + 1), PORT_YMINUS, self.CHANNEL_DELAY)
        if port == PORT_YMINUS and y - 1 >= 0:
            return Link(self.router_at(x, y - 1), PORT_YPLUS, self.CHANNEL_DELAY)
        return None

    def terminal_attachment(self, terminal):
        return terminal, PORT_TERMINAL

    def is_terminal_port(self, router, port):
        return port == PORT_TERMINAL

    def terminal_at(self, router, port):
        return router if port == PORT_TERMINAL else None
