"""Worker processes and their supervision primitives.

Each leased job runs in its own ``multiprocessing.Process`` executing
:func:`run_job_worker`. The worker communicates with the scheduler via
two files under ``<root>/hb/`` — there is no pipe or queue to lose when
either side is SIGKILLed:

- ``<job>.a<N>.hb.jsonl`` — a :class:`~repro.obs.telemetry.RunTelemetry`
  heartbeat stream (fsynced per record). Its mtime age is the lease
  liveness signal: a worker that stops touching it past the lease
  deadline is presumed wedged or dead and gets killed + re-queued.
- ``<job>.a<N>.out.json`` — the outcome, written atomically
  (``atomic_write``) as the worker's last act. Present and ``ok`` means
  the result is in the cache; present and not ``ok`` carries the
  failure diagnostic; absent after process exit means the worker died
  hard (SIGKILL, OOM) and the scheduler synthesises the diagnostic.

Both filenames carry the attempt number so a straggling old attempt
(e.g. an orphan from a previous server) can never be mistaken for — or
corrupt the signals of — the current one. Workers arm ``PR_SET_PDEATHSIG``
(Linux, best effort) so they die with the server instead of orphaning;
even without it, the worst an orphan can do is publish a correct result
into the content-addressed cache.
"""

import json
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

# Shared supervision primitives (also used by repro.parallel's shard
# workers); re-exported here so existing imports keep working.
from repro.proc import (  # noqa: F401  (re-exports)
    alive_pid,
    confirmed_kill,
    die_with_parent,
    read_outcome,
)

HB_DIR = "hb"


def heartbeat_path(root, job_id, attempt):
    return os.path.join(root, HB_DIR, f"{job_id}.a{attempt}.hb.jsonl")


def outcome_path(root, job_id, attempt):
    return os.path.join(root, HB_DIR, f"{job_id}.a{attempt}.out.json")


#: Backwards-compatible alias; the implementation lives in repro.proc.
_die_with_parent = die_with_parent


def _describe(exc):
    return f"{type(exc).__name__}: {exc}"


def _apply_chaos(chaos, attempt):
    """Pre-run fault hooks; returns the kill_at cycle (or None).

    ``sigkill_attempts=N`` makes attempts 1..N SIGKILL themselves
    before doing any work (hard worker death). ``sleep``/
    ``sleep_attempts`` wedge the worker before it heartbeats (lease
    expiry). ``kill_at``/``kill_attempts`` abort the simulation at a
    cycle via SimulationKilled (soft failure → retry path).
    """
    if attempt <= int(chaos.get("sigkill_attempts", 0)):
        os.kill(os.getpid(), signal.SIGKILL)
    if attempt <= int(chaos.get("sleep_attempts", 0)):
        time.sleep(float(chaos.get("sleep", 0.0)))
    if attempt <= int(chaos.get("kill_attempts", 0)):
        return chaos.get("kill_at")
    return None


def run_job_worker(root, job_id, attempt, spec_dict, heartbeat_every=1000,
                   hard_exit=False):
    """Process entry point: simulate one job and publish its result.

    Runs the spec's simulation, writes the artifact directory into the
    content-addressed cache (atomic publish; losing a publish race to a
    concurrent identical spec is a success), then drops the outcome
    file. Exceptions become a not-``ok`` outcome — the scheduler turns
    that into retry/dead-letter; a missing outcome means we died hard.

    ``hard_exit`` (set by :func:`start_worker`) ends the process with
    ``os._exit`` once the outcome is durably on disk: a forked worker
    has nothing of its own to finalize, and full interpreter teardown
    would walk the copy-on-write heap inherited from the server —
    measurable CPU stolen from sibling simulations on small hosts.
    """
    from repro.serve.spec import JobSpec

    _die_with_parent()
    # The forked child inherits the server's signal handlers; restore
    # defaults so a drain-initiating SIGTERM to the server is not
    # misinterpreted inside workers.
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_DFL)

    spec = JobSpec.from_dict(spec_dict)
    os.makedirs(os.path.join(root, HB_DIR), exist_ok=True)
    out_path = outcome_path(root, job_id, attempt)
    started = time.monotonic()
    try:
        _run_attempt(root, job_id, attempt, spec, out_path, started,
                     heartbeat_every)
    except Exception as exc:
        _write_outcome(out_path, ok=False, error=_describe(exc),
                       wall_time=time.monotonic() - started)
    if hard_exit:
        os._exit(0)


def _run_attempt(root, job_id, attempt, spec, out_path, started,
                 heartbeat_every):
    from repro.checkpoint import lengths_from_spec
    from repro.network.config import NetworkConfig
    from repro.obs.artifacts import write_run_artifacts
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.telemetry import RunTelemetry
    from repro.serve.cache import ResultCache
    from repro.sim.runner import run_simulation

    kill_at = _apply_chaos(spec.chaos, attempt)
    spec_hash = spec.spec_hash()
    cache = ResultCache(root)
    hit = cache.lookup(spec_hash)
    if hit is not None:
        _write_outcome(out_path, ok=True, hash=spec_hash, cached=True,
                       artifact=cache.relative_entry(spec_hash),
                       wall_time=time.monotonic() - started)
        return
    config = NetworkConfig.from_dict(spec.config)
    telemetry = RunTelemetry(
        path=heartbeat_path(root, job_id, attempt),
        every=heartbeat_every,
        label=spec.label or job_id,
        rate=spec.rate,
    )
    watchdog = None
    if spec.watchdog_window is not None:
        from repro.faults.watchdog import HangWatchdog

        watchdog = HangWatchdog(window=spec.watchdog_window)
    registry = MetricsRegistry()
    result = run_simulation(
        config,
        pattern=spec.pattern,
        rate=spec.rate,
        lengths=lengths_from_spec(spec.lengths),
        warmup=spec.warmup,
        measure=spec.measure,
        drain=spec.drain,
        metrics=registry,
        telemetry=telemetry,
        watchdog=watchdog,
        kill_at=kill_at,
    )

    def build(staging):
        write_run_artifacts(
            staging, config, result, registry=registry,
            run_info={"kind": "serve", "hash": spec_hash,
                      **spec.run_spec()},
        )

    _, fresh = cache.publish(spec_hash, build)
    _write_outcome(out_path, ok=True, hash=spec_hash, cached=not fresh,
                   artifact=cache.relative_entry(spec_hash),
                   wall_time=time.monotonic() - started)


def _write_outcome(path, **fields):
    from repro.obs.artifacts import atomic_write

    with atomic_write(path) as fh:
        json.dump(fields, fh, separators=(",", ":"))
        fh.write("\n")


# ---------------------------------------------------------------------------
# scheduler-side handles


@dataclass
class WorkerHandle:
    """Scheduler-side view of one in-flight attempt."""

    job_id: str
    attempt: int
    process: Any
    hb_path: str
    out_path: str
    #: Wall-clock lease start (time.time domain, matching heartbeat
    #: mtimes); grace before the first heartbeat counts from here.
    started: float = field(default_factory=time.time)
    spec_hash: Optional[str] = None

    @property
    def pid(self):
        return self.process.pid

    def alive(self):
        return self.process.is_alive()

    def outcome(self):
        return read_outcome(self.out_path)


def start_worker(root, job_id, attempt, spec, mp_context,
                 heartbeat_every=1000, spec_hash=None):
    """Fork one worker for an attempt; returns its WorkerHandle."""
    os.makedirs(os.path.join(root, HB_DIR), exist_ok=True)
    process = mp_context.Process(
        target=run_job_worker,
        args=(root, job_id, attempt, spec.to_dict()),
        kwargs={"heartbeat_every": heartbeat_every, "hard_exit": True},
        name=f"repro-serve-{job_id}-a{attempt}",
        daemon=True,
    )
    process.start()
    return WorkerHandle(
        job_id=job_id,
        attempt=attempt,
        process=process,
        hb_path=heartbeat_path(root, job_id, attempt),
        out_path=outcome_path(root, job_id, attempt),
        spec_hash=spec_hash,
    )


# confirmed_kill and alive_pid are re-exported from repro.proc above.
