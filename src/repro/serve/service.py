"""The crash-tolerant experiment service.

An :class:`ExperimentService` owns one service *root* directory::

    root/
      jobs.jsonl      # durable job store (append-only, fsynced)
      serve.lock      # single-server guard: {"pid": ...}
      status.json     # latest status snapshot (atomic_write)
      spool/          # submission inbox: one <jobid>.json per request
      hb/             # per-attempt heartbeat + outcome files
      cache/          # content-addressed result cache (objects/, index)

Everything the scheduler believes is re-derivable from disk, and every
state transition is journaled *before* it is acted on — so SIGKILLing
the server at any instant loses at most in-flight simulation work,
never bookkeeping. On restart, :meth:`recover` folds the journal,
re-queues jobs whose lease died with the previous server, reconciles
the cache, and the queue drains to completion as if nothing happened.

Scheduling is a poll loop (:meth:`tick`): admit spooled submissions,
reap finished/expired workers, launch eligible jobs. Tests drive
``tick`` directly for determinism; ``repro serve`` wraps it in
:meth:`run` with SIGTERM → graceful drain.

Crash-tolerance invariants, each enforced in exactly one place:

- *No lost jobs*: a submission is journaled (fsync) before its spool
  file is unlinked; a crash between the two re-admits a known job id,
  which is detected and skipped.
- *No concurrent duplicate attempts*: a lease is re-queued only after
  its worker is confirmed dead (:func:`confirmed_kill`); a restarting
  server only re-queues once its exclusive lock proves the previous
  server — whose workers die with it via PDEATHSIG — is gone.
- *At most one simulation per cache miss*: identical specs share one
  content hash; the launch path checks the cache first and holds
  single-flight (a hash already running blocks further launches of the
  same hash until it resolves, then they cache-hit).
"""

import json
import os
import signal
import time

from repro.obs.artifacts import atomic_write
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import heartbeat_age
from repro.serve.backoff import DEFAULT_RETRY_POLICY
from repro.serve.cache import ResultCache
from repro.serve.spec import JobSpec, new_job_id
from repro.serve.store import ACTIVE_STATES, JobStore
from repro.serve.supervisor import (
    alive_pid,
    confirmed_kill,
    start_worker,
)

LOCK = "serve.lock"
STATUS = "status.json"
SPOOL_DIR = "spool"


class ServiceLockError(RuntimeError):
    """Another live server already owns this root."""


def spool_path(root, job_id):
    return os.path.join(root, SPOOL_DIR, f"{job_id}.json")


class ExperimentService:
    """Supervised worker pool + durable queue over one root directory.

    ``workers`` caps concurrent worker processes; ``lease_timeout`` is
    the heartbeat-staleness deadline (seconds) after which a worker is
    presumed wedged/dead, killed, and its job re-queued;
    ``max_retries`` bounds re-execution attempts beyond the first
    before a job is dead-lettered. ``clock``/``walltime`` are
    injectable for tests (monotonic vs wall-clock domains).
    """

    def __init__(self, root, workers=2, max_retries=3, lease_timeout=30.0,
                 retry_policy=DEFAULT_RETRY_POLICY, heartbeat_every=1000,
                 mp_context=None, metrics=None, clock=time.monotonic,
                 walltime=time.time, priority_aging=0.0):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if priority_aging < 0:
            raise ValueError("priority_aging must be >= 0")
        self.root = os.path.abspath(root)
        self.workers = workers
        self.max_retries = max_retries
        self.lease_timeout = lease_timeout
        self.retry_policy = retry_policy
        self.heartbeat_every = heartbeat_every
        #: Fair-share aging: queued jobs gain this many priority points
        #: per second of wait, so a stream of high-priority submissions
        #: cannot starve older low-priority work. 0 disables aging
        #: (strict static priority, the historical behavior).
        self.priority_aging = priority_aging
        if mp_context is None:
            import multiprocessing

            # fork keeps worker startup cheap and lets tests monkeypatch
            # through into workers; the sim itself is import-clean under
            # spawn too if a platform ever needs it.
            mp_context = multiprocessing.get_context("fork")
        self.mp = mp_context
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.clock = clock
        self.walltime = walltime

        os.makedirs(os.path.join(self.root, SPOOL_DIR), exist_ok=True)
        self.store = JobStore(self.root)
        self.cache = ResultCache(self.root)
        self.jobs = {}
        self._handles = {}  # job_id -> WorkerHandle
        self._inflight = set()  # spec hashes currently simulating
        self._indexed = set()  # hashes with a cache index line
        self.draining = False
        self._started_at = None
        self._locked = False

        m = self.metrics
        self.c_submitted = m.counter("serve_jobs_submitted_total")
        self.c_done = m.counter("serve_jobs_done_total")
        self.c_dead = m.counter("serve_jobs_dead_total")
        self.c_retries = m.counter("serve_retries_total")
        self.c_requeued = m.counter("serve_requeued_total")
        self.c_expired = m.counter("serve_leases_expired_total")
        self.c_hits = m.counter("serve_cache_hits_total")
        self.c_misses = m.counter("serve_cache_misses_total")
        self.g_queue = m.gauge("serve_queue_depth")
        self.g_workers = m.gauge("serve_workers_active")

    # --- lifecycle ----------------------------------------------------

    def recover(self):
        """Acquire the root, fold the journal, re-queue orphaned leases.

        Returns the number of jobs re-queued. Must be called (once)
        before :meth:`tick`.
        """
        self._acquire_lock()
        self._started_at = self.walltime()
        self.jobs = self.store.recover()
        self._indexed = self.cache.reconcile()
        requeued = 0
        for rec in self.jobs.values():
            if rec.state in ("leased", "running"):
                # The lease belonged to the dead previous server; its
                # workers died with it (PDEATHSIG), so re-execution
                # cannot race them. Attempt count is preserved.
                self.store.append("requeued", rec.job_id, t=self.walltime())
                rec.state = "submitted"
                rec.worker = None
                requeued += 1
                self.c_requeued.inc()
        return requeued

    def close(self):
        """Release file handles and the lock (workers are left alone)."""
        self.store.close()
        self.cache.close()
        self._release_lock()

    def __enter__(self):
        self.recover()
        return self

    def __exit__(self, *exc):
        self.close()

    def _acquire_lock(self):
        path = os.path.join(self.root, LOCK)
        if os.path.exists(path):
            try:
                with open(path) as fh:
                    owner = json.load(fh).get("pid")
            except (OSError, json.JSONDecodeError):
                owner = None
            if owner != os.getpid() and alive_pid(owner):
                raise ServiceLockError(
                    f"service root {self.root!r} is owned by live "
                    f"pid {owner}"
                )
        with atomic_write(path) as fh:
            json.dump({"pid": os.getpid(), "t": self.walltime()}, fh)
            fh.write("\n")
        self._locked = True

    def _release_lock(self):
        if not self._locked:
            return
        path = os.path.join(self.root, LOCK)
        try:
            with open(path) as fh:
                if json.load(fh).get("pid") == os.getpid():
                    os.unlink(path)
        except (OSError, json.JSONDecodeError):
            pass
        self._locked = False

    # --- submission ---------------------------------------------------

    def submit(self, spec, job_id=None):
        """Admit one :class:`JobSpec` directly; returns its job id.

        An invalid spec (bad config) is journaled and immediately
        dead-lettered — retrying cannot fix it.
        """
        if job_id is None:
            job_id = new_job_id()
        if job_id in self.jobs:
            return job_id  # duplicate admission (spool crash window)
        try:
            spec_hash = spec.spec_hash()
        except ValueError as exc:
            self._admit(job_id, spec, None)
            rec = self.jobs[job_id]
            rec.state = "dead"
            rec.error = f"invalid spec: {exc}"
            self.store.append("dead", job_id, error=rec.error, attempts=0,
                              t=self.walltime())
            self.c_dead.inc()
            return job_id
        self._admit(job_id, spec, spec_hash)
        return job_id

    def _admit(self, job_id, spec, spec_hash):
        event = self.store.append(
            "submitted", job_id, spec=spec.to_dict(), hash=spec_hash,
            priority=spec.priority, t=self.walltime(),
        )
        from repro.serve.store import fold_events

        self.jobs.update(fold_events([event]))
        self.c_submitted.inc()

    def admit_spool(self):
        """Drain the submission inbox into the journal.

        Clients drop ``{"job": id, "spec": {...}}`` files atomically
        into ``spool/``; admission journals then unlinks. A crash
        between the two leaves a spool file for an already-known job,
        which the duplicate check skips (and still unlinks).
        """
        admitted = 0
        spool = os.path.join(self.root, SPOOL_DIR)
        for name in sorted(os.listdir(spool)):
            if not name.endswith(".json"):
                continue
            path = os.path.join(spool, name)
            try:
                with open(path) as fh:
                    payload = json.load(fh)
                job_id = payload.get("job") or name[:-len(".json")]
                spec = JobSpec.from_dict(payload["spec"])
            except (OSError, json.JSONDecodeError, KeyError, TypeError,
                    ValueError) as exc:
                # Unparseable submission: dead-letter under the filename
                # so the client can observe the rejection.
                job_id = name[: -len(".json")]
                if job_id not in self.jobs:
                    self.store.append("submitted", job_id, spec={},
                                      hash=None, t=self.walltime())
                    self.store.append("dead", job_id,
                                      error=f"bad submission: {exc}",
                                      attempts=0, t=self.walltime())
                    self.jobs = self.store.recover()
                    self.c_submitted.inc()
                    self.c_dead.inc()
                os.unlink(path)
                continue
            if job_id not in self.jobs:
                self.submit(spec, job_id=job_id)
                admitted += 1
            os.unlink(path)
        return admitted

    # --- scheduling ---------------------------------------------------

    def tick(self):
        """One scheduler pass; returns True if anything changed."""
        changed = 0
        if not self.draining:
            changed += self.admit_spool()
        changed += self._reap()
        changed += self._launch()
        self._update_gauges()
        return changed > 0

    def _reap(self):
        """Collect finished workers; expire stale leases."""
        changed = 0
        for job_id in list(self._handles):
            handle = self._handles[job_id]
            outcome = handle.outcome()
            if outcome is not None:
                # Outcome is the worker's last act; let the process
                # finish exiting before accounting.
                handle.process.join()
                del self._handles[job_id]
                self._settle(job_id, handle, outcome)
                changed += 1
            elif not handle.alive():
                handle.process.join()
                del self._handles[job_id]
                self._fail(job_id, handle,
                           f"worker pid {handle.pid} died without an "
                           f"outcome (exit code "
                           f"{handle.process.exitcode})")
                changed += 1
            elif self._lease_age(handle) > self.lease_timeout:
                confirmed_kill(handle.process)
                del self._handles[job_id]
                self.c_expired.inc()
                self._fail(job_id, handle,
                           f"lease expired: no heartbeat for "
                           f"{self.lease_timeout:g}s (worker pid "
                           f"{handle.pid} killed)")
                changed += 1
        return changed

    def _lease_age(self, handle):
        """Seconds since the worker last proved liveness."""
        age = heartbeat_age(handle.hb_path, now=self.walltime())
        if age is None:
            # No heartbeat yet: count from lease start (covers workers
            # that wedge before opening their stream).
            age = self.walltime() - handle.started
        return age

    def _settle(self, job_id, handle, outcome):
        rec = self.jobs[job_id]
        if outcome.get("ok"):
            cached = bool(outcome.get("cached"))
            spec_hash = outcome.get("hash") or rec.hash
            if spec_hash and spec_hash not in self._indexed:
                self.cache.record(spec_hash, job_id=job_id,
                                  t=self.walltime())
                self._indexed.add(spec_hash)
            self._inflight.discard(spec_hash)
            self.store.append(
                "done", job_id, cached=cached,
                artifact=outcome.get("artifact"),
                wall_time=outcome.get("wall_time"), worker=handle.pid,
                t=self.walltime(),
            )
            rec.state = "done"
            rec.cached = cached
            rec.artifact = outcome.get("artifact")
            rec.wall_time = outcome.get("wall_time")
            rec.finished_t = self.walltime()
            self.c_done.inc()
            (self.c_hits if cached else self.c_misses).inc()
        else:
            self._fail(job_id, handle,
                       outcome.get("error") or "worker reported failure")

    def _fail(self, job_id, handle, error):
        """Retry with deterministic backoff, or dead-letter."""
        rec = self.jobs[job_id]
        self._inflight.discard(rec.hash)
        if rec.attempts >= 1 + self.max_retries:
            self.store.append("dead", job_id, error=error,
                              attempts=rec.attempts, t=self.walltime())
            rec.state = "dead"
            rec.error = error
            rec.finished_t = self.walltime()
            self.c_dead.inc()
            return
        delay = self.retry_policy.delay(rec.hash or job_id, rec.attempts)
        not_before = self.walltime() + delay
        self.store.append("retry", job_id, error=error, delay=delay,
                          not_before=not_before, t=self.walltime())
        rec.state = "retry"
        rec.error = error
        rec.not_before = not_before
        rec.retry_delays.append(delay)
        rec.worker = None
        self.c_retries.inc()

    def _effective_priority(self, rec, now):
        """Static priority plus queue-wait aging (fair share).

        Aging is computed from the durable ``submitted_t``, so it
        survives restarts and is identical after a journal replay.
        """
        if not self.priority_aging or rec.submitted_t is None:
            return float(rec.priority)
        waited = max(0.0, now - rec.submitted_t)
        return rec.priority + self.priority_aging * waited

    def _launch(self):
        """Lease eligible jobs onto free workers (cache hits are free)."""
        changed = 0
        now = self.walltime()
        eligible = sorted(
            (rec for rec in self.jobs.values()
             if rec.state in ("submitted", "retry")
             and rec.not_before <= now),
            key=lambda r: (-self._effective_priority(r, now),
                           r.submitted_t or 0.0, r.job_id),
        )
        for rec in eligible:
            if self.draining:
                break
            hit = self.cache.lookup(rec.hash) if rec.hash else None
            if hit is not None:
                # Result already computed (earlier job, or a previous
                # attempt that published and then died): no worker.
                self.store.append(
                    "done", rec.job_id, cached=True,
                    artifact=self.cache.relative_entry(rec.hash),
                    wall_time=0.0, t=now,
                )
                if rec.hash not in self._indexed:
                    self.cache.record(rec.hash, job_id=rec.job_id, t=now)
                    self._indexed.add(rec.hash)
                rec.state = "done"
                rec.cached = True
                rec.artifact = self.cache.relative_entry(rec.hash)
                rec.finished_t = now
                self.c_done.inc()
                self.c_hits.inc()
                changed += 1
                continue
            if len(self._handles) >= self.workers:
                break
            if rec.hash in self._inflight:
                # Single-flight: an identical spec is simulating right
                # now; this job stays queued and cache-hits when it
                # lands.
                continue
            attempt = rec.attempts + 1
            self.store.append("leased", rec.job_id, attempt=attempt,
                              t=now)
            rec.state = "leased"
            rec.attempts = attempt
            spec = JobSpec.from_dict(rec.spec)
            handle = start_worker(
                self.root, rec.job_id, attempt, spec, self.mp,
                heartbeat_every=self.heartbeat_every,
                spec_hash=rec.hash,
            )
            handle.started = now
            self._handles[rec.job_id] = handle
            if rec.hash:
                self._inflight.add(rec.hash)
            self.store.append("running", rec.job_id, worker=handle.pid,
                              t=now)
            rec.state = "running"
            rec.worker = handle.pid
            changed += 1
        return changed

    # --- drain / serve loop -------------------------------------------

    def request_drain(self):
        """Graceful shutdown: reject new work, let running jobs finish.

        The queue needs no explicit persistence — it already lives in
        the journal; a later server picks it up via :meth:`recover`.
        """
        self.draining = True

    def drained(self):
        return self.draining and not self._handles

    def finished(self):
        """Every known job is terminal and the spool is empty."""
        spool = os.path.join(self.root, SPOOL_DIR)
        if any(n.endswith(".json") for n in os.listdir(spool)):
            return False
        return all(rec.terminal for rec in self.jobs.values())

    def run(self, poll=0.05, once=False, max_seconds=None,
            install_signals=True, status_every=0.5):
        """Poll loop around :meth:`tick` until drained (or ``once``).

        ``once`` exits as soon as every known job is terminal and the
        spool is empty — the batch mode CI and tests use. SIGTERM and
        SIGINT request a graceful drain.
        """
        if install_signals:
            previous = {
                sig: signal.signal(sig, lambda *_: self.request_drain())
                for sig in (signal.SIGTERM, signal.SIGINT)
            }
        start = self.clock()
        last_status = -1.0
        try:
            while True:
                self.tick()
                now = self.clock()
                if now - last_status >= status_every:
                    self.write_status()
                    last_status = now
                if self.draining and not self._handles:
                    break
                if once and self.finished():
                    break
                if max_seconds is not None and now - start > max_seconds:
                    break
                self._wait(poll)
        finally:
            self.write_status()
            if install_signals:
                for sig, handler in previous.items():
                    signal.signal(sig, handler)
        return self.status()

    def _wait(self, poll):
        """Sleep up to ``poll`` seconds, waking early when a worker exits.

        Blocking on the worker process sentinels makes reaping
        event-driven — a finished worker frees its slot in
        microseconds rather than at the next poll — and idles the
        scheduler between events so it steals no CPU from the
        simulations (which matters on small hosts; the poll period
        then only bounds spool-admission and backoff latency).
        ``benchmarks/test_serve_overhead.py`` gates the resulting
        dispatch tax.
        """
        sentinels = [h.process.sentinel for h in self._handles.values()]
        if not sentinels:
            time.sleep(poll)
            return
        from multiprocessing.connection import wait

        wait(sentinels, timeout=poll)

    # --- introspection ------------------------------------------------

    def status(self):
        """Queue/worker/cache snapshot (also persisted to status.json)."""
        now = self.walltime()
        by_state = {}
        retries = 0
        for rec in self.jobs.values():
            by_state[rec.state] = by_state.get(rec.state, 0) + 1
            retries += len(rec.retry_delays)
        hits = self.c_hits.value
        misses = self.c_misses.value
        lookups = hits + misses
        return {
            "pid": os.getpid(),
            "t": now,
            "uptime_sec": (now - self._started_at
                           if self._started_at else None),
            "draining": self.draining,
            "jobs": by_state,
            "queue_depth": sum(
                by_state.get(s, 0) for s in ACTIVE_STATES
            ) - by_state.get("running", 0) - by_state.get("leased", 0),
            "workers": [
                {
                    "job": h.job_id,
                    "pid": h.pid,
                    "attempt": h.attempt,
                    "lease_age_sec": self._lease_age(h),
                }
                for h in self._handles.values()
            ],
            "retries": retries,
            "cache": {
                "hits": hits,
                "misses": misses,
                "hit_rate": hits / lookups if lookups else None,
                "entries": len(self._indexed),
            },
        }

    def write_status(self):
        status = self.status()
        with atomic_write(os.path.join(self.root, STATUS)) as fh:
            json.dump(status, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return status

    def _update_gauges(self):
        self.g_workers.set(len(self._handles))
        self.g_queue.set(sum(
            1 for rec in self.jobs.values()
            if rec.state in ("submitted", "retry")
        ))
