"""Deterministic jittered exponential backoff.

Both the experiment service's job scheduler and ``parallel_sweep``'s
per-point retry path wait between attempts of work that just failed.
The delay schedule here is the usual exponential-with-jitter, but the
jitter is *deterministic*: it is drawn from a :class:`random.Random`
seeded from the work item's identity and the attempt number, so a
re-run of the same sweep (or a restarted service replaying the same
job) produces byte-for-byte the same retry timeline. Determinism is a
repository-wide invariant — retries must not be the one place wall
behaviour depends on a process-global RNG.

Jitter still does its real job (decorrelating many items retrying at
once) because different keys seed different streams.
"""

import hashlib
import random
from dataclasses import dataclass


def _jitter_rng(key, attempt):
    seed = int.from_bytes(
        hashlib.sha256(f"{key}|{attempt}".encode("utf-8")).digest()[:8],
        "big",
    )
    return random.Random(seed)


@dataclass(frozen=True)
class RetryPolicy:
    """Delay schedule for retrying one failed unit of work.

    ``delay(key, attempt)`` is the seconds to wait before retry number
    ``attempt`` (1 = the first retry) of the item identified by
    ``key``: ``base * factor**(attempt-1)`` capped at ``cap``, scaled
    by a deterministic jitter factor uniform in
    ``[1 - jitter, 1 + jitter]`` seeded from ``(key, attempt)``.
    """

    base: float = 0.1
    factor: float = 2.0
    cap: float = 30.0
    jitter: float = 0.5

    def __post_init__(self):
        if self.base < 0 or self.cap < 0:
            raise ValueError("base and cap must be >= 0")
        if self.factor < 1.0:
            raise ValueError("factor must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def delay(self, key, attempt):
        """Seconds to wait before retry ``attempt`` (>= 1) of ``key``."""
        if attempt < 1:
            raise ValueError("attempt numbering starts at 1")
        raw = min(self.cap, self.base * self.factor ** (attempt - 1))
        if raw <= 0:
            return 0.0
        span = 2.0 * self.jitter * _jitter_rng(key, attempt).random()
        return raw * (1.0 - self.jitter + span)

    def schedule(self, key, retries):
        """The full delay sequence for ``retries`` retry attempts."""
        return [self.delay(key, attempt) for attempt in range(1, retries + 1)]


#: Default policy for sweep-point retries and the experiment service.
DEFAULT_RETRY_POLICY = RetryPolicy()
