"""Client-side helpers for the experiment service.

Submission is a filesystem handshake, not a network protocol: a client
atomically drops ``{"job": id, "spec": {...}}`` into ``<root>/spool/``
and the server journals + executes it. That keeps the service free of
socket dependencies and makes submissions exactly as durable as the
rest of the system — a spool file survives both client and server
crashes until the server has fsynced the submission into its journal.

Results are read back the same way: fold ``jobs.jsonl`` (read-only,
safe while the server is live) and load the ``summary.json`` out of
the journaled artifact directory inside the content-addressed cache.
"""

import json
import os
import time

from repro.obs.artifacts import SUMMARY, atomic_write
from repro.serve.service import STATUS, SPOOL_DIR, spool_path
from repro.serve.spec import JobSpec, new_job_id, spec_for
from repro.serve.store import JOURNAL, fold_events, read_events


def submit_spec(root, spec, job_id=None):
    """Drop one :class:`JobSpec` into the service spool; returns job id.

    The spool write is atomic, so the server never sees a torn
    submission; the id is assigned client-side so the caller can poll
    for its outcome immediately.
    """
    if job_id is None:
        job_id = new_job_id()
    os.makedirs(os.path.join(root, SPOOL_DIR), exist_ok=True)
    with atomic_write(spool_path(root, job_id)) as fh:
        json.dump({"job": job_id, "spec": spec.to_dict()}, fh, indent=2)
        fh.write("\n")
    return job_id


def submit_job(root, config, **kwargs):
    """Build a spec via :func:`spec_for` and spool it; returns job id."""
    return submit_spec(root, spec_for(config, **kwargs))


def submit_sweep(root, config, rates, **kwargs):
    """One job per injection rate; returns job ids in rate order."""
    label = kwargs.pop("label", "")
    return [
        submit_spec(
            root,
            spec_for(config, rate=rate,
                     label=f"{label}@{rate:g}" if label else f"rate{rate:g}",
                     **kwargs),
        )
        for rate in rates
    ]


def job_records(root):
    """Read-only fold of the service journal: ``{job_id: JobRecord}``."""
    return fold_events(read_events(os.path.join(root, JOURNAL)))


def wait_for(root, job_ids, timeout=60.0, poll=0.05,
             clock=time.monotonic, sleep=time.sleep):
    """Block until every job id is terminal; returns their records.

    Raises TimeoutError (listing the stragglers) if the deadline
    passes first — the caller decides whether that means a dead server
    or just a long queue.
    """
    deadline = clock() + timeout
    while True:
        records = job_records(root)
        pending = [j for j in job_ids
                   if j not in records or not records[j].terminal]
        if not pending:
            return {j: records[j] for j in job_ids}
        if clock() >= deadline:
            raise TimeoutError(
                f"jobs not terminal after {timeout:g}s: {pending}"
            )
        sleep(poll)


def load_result(root, record):
    """The :class:`SimResult` of a done job (or an artifact path)."""
    from repro.stats.summary import SimResult

    artifact = record if isinstance(record, str) else record.artifact
    if artifact is None:
        raise ValueError("job has no artifact (not done?)")
    path = artifact if os.path.isabs(artifact) else os.path.join(root,
                                                                 artifact)
    with open(os.path.join(path, SUMMARY)) as fh:
        return SimResult.from_dict(json.load(fh))


def scan_service(root):
    """Offline status: journal fold + last status snapshot, no server.

    Works on a live root (all files are append-only or atomically
    replaced) and on the debris of a SIGKILLed one.
    """
    records = job_records(root)
    by_state = {}
    retries = 0
    for rec in records.values():
        by_state[rec.state] = by_state.get(rec.state, 0) + 1
        retries += len(rec.retry_delays)
    status = None
    try:
        with open(os.path.join(root, STATUS)) as fh:
            status = json.load(fh)
    except (OSError, json.JSONDecodeError):
        pass
    dead = [rec.diagnostic() for rec in records.values()
            if rec.state == "dead"]
    return {
        "jobs": by_state,
        "total": len(records),
        "retries": retries,
        "dead": dead,
        "spool": sum(
            1 for n in os.listdir(os.path.join(root, SPOOL_DIR))
            if n.endswith(".json")
        ) if os.path.isdir(os.path.join(root, SPOOL_DIR)) else 0,
        "server": status,
    }
