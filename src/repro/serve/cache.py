"""Content-addressed result cache.

Results live under ``<root>/cache/objects/<hash>/`` where ``<hash>`` is
the config/run-spec SHA-256 the checkpoint machinery computes
(:func:`repro.checkpoint.config_hash`). A resubmitted identical spec
returns the stored artifact directory instead of re-simulating.

Population is crash-proof by construction: a worker builds the
artifact directory in ``cache/tmp/`` and publishes it with a single
``os.replace`` — the same tempfile-then-rename discipline as
``atomic_write``, lifted to whole directories. A crash mid-build
leaves only garbage in ``tmp/`` (swept on recovery); a crash *after*
the rename leaves a complete entry. Two workers racing to publish the
same hash are resolved by the filesystem: the second rename fails on
the now-existing destination and the loser discards its staging copy.
The cache therefore never holds a partial entry, which is what lets
``lookup`` trust a bare directory-existence check.

``index.jsonl`` is the append-only audit log (one line per populated
hash, fsynced) that the chaos tests use to prove no experiment was
simulated more than once per cache miss; the object tree itself is the
source of truth, and :meth:`ResultCache.reconcile` re-derives missing
index lines after a crash between publish and append.
"""

import json
import os
import shutil
import tempfile

from repro.obs.artifacts import SUMMARY

CACHE_DIR = "cache"
OBJECTS_DIR = "objects"
TMP_DIR = "tmp"
INDEX = "index.jsonl"


class ResultCache:
    """Content-addressed artifact store under one service root."""

    def __init__(self, root):
        self.root = root
        self.base = os.path.join(root, CACHE_DIR)
        self.objects = os.path.join(self.base, OBJECTS_DIR)
        self.tmp = os.path.join(self.base, TMP_DIR)
        self.index_path = os.path.join(self.base, INDEX)
        os.makedirs(self.objects, exist_ok=True)
        os.makedirs(self.tmp, exist_ok=True)
        self._index_fh = None

    # --- lookup / publish --------------------------------------------

    def entry_path(self, spec_hash):
        return os.path.join(self.objects, spec_hash)

    def relative_entry(self, spec_hash):
        """Entry path relative to the service root (journal-friendly)."""
        return os.path.join(CACHE_DIR, OBJECTS_DIR, spec_hash)

    def lookup(self, spec_hash):
        """Absolute artifact directory for a hash, or None on a miss.

        Publication is atomic, so an existing entry directory is always
        complete; the summary check only guards against foreign debris.
        """
        path = self.entry_path(spec_hash)
        if os.path.isfile(os.path.join(path, SUMMARY)):
            return path
        return None

    def publish(self, spec_hash, build):
        """Populate the entry for ``spec_hash`` via ``build(staging_dir)``.

        Returns ``(path, fresh)`` where ``fresh`` is False when the
        entry already existed (including losing a publish race — the
        staged copy is discarded, never merged).
        """
        final = self.entry_path(spec_hash)
        if self.lookup(spec_hash) is not None:
            return final, False
        staging = tempfile.mkdtemp(dir=self.tmp, prefix=spec_hash[:12] + ".")
        try:
            build(staging)
            os.replace(staging, final)
            return final, True
        except OSError:
            if self.lookup(spec_hash) is not None:
                return final, False
            raise
        finally:
            shutil.rmtree(staging, ignore_errors=True)

    # --- audit index -------------------------------------------------

    def read_index(self):
        """Intact index entries, in append order (torn tail dropped)."""
        entries = []
        if not os.path.exists(self.index_path):
            return entries
        with open(self.index_path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    break  # torn tail from a crash mid-append
                if isinstance(entry, dict) and "hash" in entry:
                    entries.append(entry)
        return entries

    def indexed_hashes(self):
        return {entry["hash"] for entry in self.read_index()}

    def record(self, spec_hash, job_id=None, t=None):
        """Durably append one index line (caller dedups per hash)."""
        if self._index_fh is None:
            self._index_fh = open(self.index_path, "a")
        entry = {"hash": spec_hash, "path": self.relative_entry(spec_hash)}
        if job_id is not None:
            entry["job"] = job_id
        if t is not None:
            entry["t"] = t
        self._index_fh.write(json.dumps(entry, separators=(",", ":")))
        self._index_fh.write("\n")
        self._index_fh.flush()
        os.fsync(self._index_fh.fileno())

    def reconcile(self):
        """Sweep staging debris; index entries published but unindexed.

        Returns the set of indexed hashes after reconciliation. Called
        on service recovery: a crash between ``os.replace`` and the
        index append (or an orphaned worker publishing after its server
        died) leaves a complete object with no audit line.
        """
        for name in os.listdir(self.tmp):
            shutil.rmtree(os.path.join(self.tmp, name), ignore_errors=True)
        indexed = self.indexed_hashes()
        for name in sorted(os.listdir(self.objects)):
            if name not in indexed and self.lookup(name) is not None:
                self.record(name)
                indexed.add(name)
        return indexed

    def close(self):
        if self._index_fh is not None:
            self._index_fh.close()
            self._index_fh = None
