"""Crash-tolerant experiment service (``repro serve``).

A durable job queue + supervised worker pool + content-addressed
result cache over one root directory. Submit jobs (``submit_spec`` /
the ``repro serve --submit*`` CLI), run the scheduler
(:class:`ExperimentService` / ``repro serve``), kill anything —
workers, the server, both — restart, and the queue completes with
bit-identical results and no duplicated simulation work. See DESIGN
§10 for the lifecycle state machine and the crash-tolerance
invariants.
"""

from repro.serve.api import (
    job_records,
    load_result,
    scan_service,
    submit_job,
    submit_spec,
    submit_sweep,
    wait_for,
)
from repro.serve.backoff import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.serve.cache import ResultCache
from repro.serve.service import ExperimentService, ServiceLockError
from repro.serve.spec import JobSpec, new_job_id, spec_for
from repro.serve.store import JobRecord, JobStore, fold_events, read_events

__all__ = [
    "DEFAULT_RETRY_POLICY",
    "ExperimentService",
    "JobRecord",
    "JobSpec",
    "JobStore",
    "ResultCache",
    "RetryPolicy",
    "ServiceLockError",
    "fold_events",
    "job_records",
    "load_result",
    "new_job_id",
    "read_events",
    "scan_service",
    "spec_for",
    "submit_job",
    "submit_spec",
    "submit_sweep",
    "wait_for",
]
