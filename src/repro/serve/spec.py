"""Job specifications for the experiment service.

A :class:`JobSpec` is one simulation request: a full ``NetworkConfig``
dict plus the run spec (pattern, rate, length distribution, phase
schedule) in exactly the canonical layout the checkpoint machinery
hashes. Its :meth:`spec_hash` therefore equals the ``config_hash`` a
checkpoint of the same experiment would carry — the content address the
result cache dedups on.

Fields outside the hash (``priority``, ``label``, ``watchdog_window``,
``chaos``) steer *how* the job is executed, never *what* it computes:
two specs that differ only in those fields are the same experiment and
share one cache entry. ``chaos`` is the test/ops fault hook (worker
self-SIGKILL, wedge sleeps, mid-run kills) used by the crash-tolerance
suite; production submissions leave it empty.
"""

import dataclasses
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.checkpoint import canonical_run_spec, config_hash
from repro.network.config import NetworkConfig


def new_job_id():
    """A fresh collision-resistant job identifier."""
    return "j" + uuid.uuid4().hex[:12]


@dataclass
class JobSpec:
    """One run request: the experiment (hashed) plus execution knobs."""

    #: ``NetworkConfig.to_dict()`` payload.
    config: Dict[str, Any]
    pattern: str = "uniform"
    rate: float = 0.2
    #: Packet-length distribution spec (``checkpoint.lengths_spec``).
    lengths: Dict[str, Any] = field(
        default_factory=lambda: {"kind": "fixed", "length": 1}
    )
    warmup: int = 1000
    measure: int = 3000
    drain: int = 2000
    # --- execution knobs (excluded from the hash) ---
    priority: int = 0
    label: str = ""
    #: Strict HangWatchdog window armed inside the worker (cycles).
    watchdog_window: Optional[int] = None
    #: Deterministic fault hooks for crash-tolerance tests:
    #: ``sigkill_attempts`` (self-SIGKILL at start of attempts <= N),
    #: ``kill_at`` + ``kill_attempts`` (SimulationKilled at a cycle),
    #: ``sleep`` + ``sleep_attempts`` (wedge before heartbeating).
    chaos: Dict[str, Any] = field(default_factory=dict)

    def run_spec(self):
        """The canonical run-spec dict shared with checkpoints."""
        return canonical_run_spec(
            self.pattern, self.rate, dict(self.lengths),
            self.warmup, self.measure, self.drain,
        )

    def spec_hash(self):
        """Content address of this experiment (== checkpoint hash).

        Raises ``ValueError`` on an invalid config — callers admitting
        untrusted specs dead-letter on that instead of crashing.
        """
        return config_hash(NetworkConfig.from_dict(self.config),
                           self.run_spec())

    def to_dict(self):
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data):
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown job spec keys: {sorted(unknown)}")
        if "config" not in data:
            raise ValueError("job spec needs a 'config' dict")
        return cls(**data)


def spec_for(config, pattern="uniform", rate=0.2, lengths=None,
             warmup=1000, measure=3000, drain=2000, **knobs):
    """Build a JobSpec from a ``NetworkConfig`` (or its dict).

    ``lengths`` may be a distribution object, a spec dict, or None
    (single-flit). Extra keyword arguments are the execution knobs
    (``priority``, ``label``, ``watchdog_window``, ``chaos``).
    """
    from repro.checkpoint import lengths_spec

    if isinstance(config, NetworkConfig):
        config = config.to_dict()
    if lengths is None:
        lengths = {"kind": "fixed", "length": 1}
    elif not isinstance(lengths, dict):
        lengths = lengths_spec(lengths)
    return JobSpec(config=dict(config), pattern=pattern, rate=rate,
                   lengths=dict(lengths), warmup=warmup, measure=measure,
                   drain=drain, **knobs)
