"""Durable job store: an append-only, fsynced journal of job events.

The service's single source of truth is ``<root>/jobs.jsonl``. Every
job state transition is appended as one JSON line and fsynced before
the transition is acted on, so the scheduler's state is reconstructible
after a crash at any instant: fold the journal, keep the latest state
per job. A torn final line (SIGKILL mid-append) is detected by its JSON
parse failure and discarded together with anything after it, exactly
like :class:`repro.sim.parallel.SweepJournal` — the corresponding
transition simply re-happens.

Job lifecycle (the state machine DESIGN §10 documents)::

    submitted ──> leased ──> running ──> done
        ^            │           │
        │            └────┬──────┘
        │                 v
        └─ requeued    retry ──(attempts exhausted)──> dead

``retry`` carries the deterministic backoff delay and the wall-clock
``not_before`` gate; ``requeued`` is the restart path for jobs whose
lease died with the previous server process. ``done`` records whether
the result came from the cache (``cached``) and where the artifact
directory lives — the journal plus the cache index is enough to audit
that no experiment hash was ever simulated twice.
"""

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

JOURNAL = "jobs.jsonl"

#: States a job can be observed in after folding the journal.
ACTIVE_STATES = ("submitted", "leased", "running", "retry")
TERMINAL_STATES = ("done", "dead")


@dataclass
class JobRecord:
    """Folded view of one job: the latest state plus its history tally."""

    job_id: str
    spec: Dict[str, Any] = field(default_factory=dict)
    hash: Optional[str] = None
    priority: int = 0
    label: str = ""
    rate: Optional[float] = None
    state: str = "submitted"
    #: Lease attempts started so far (1 = first execution).
    attempts: int = 0
    error: Optional[str] = None
    #: Wall-clock gate before the next attempt may be leased.
    not_before: float = 0.0
    worker: Optional[int] = None
    cached: Optional[bool] = None
    #: Artifact directory, relative to the service root.
    artifact: Optional[str] = None
    wall_time: Optional[float] = None
    submitted_t: Optional[float] = None
    finished_t: Optional[float] = None
    retry_delays: List[float] = field(default_factory=list)

    @property
    def terminal(self):
        return self.state in TERMINAL_STATES

    def diagnostic(self):
        """PointError-style dict for dead-letter reporting."""
        return {
            "label": self.label,
            "rate": self.rate,
            "error": self.error,
            "attempts": self.attempts,
        }


def read_events(path):
    """Every intact journal line, in order; torn tail discarded."""
    events = []
    if not os.path.exists(path):
        return events
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                break  # torn tail from a crash mid-append
            if isinstance(event, dict) and "ev" in event and "job" in event:
                events.append(event)
    return events


def fold_events(events):
    """``{job_id: JobRecord}`` in submission order.

    Unknown event types are skipped (forward compatibility); events for
    jobs with no ``submitted`` record create the record on the fly so a
    journal truncated at the front still folds.
    """
    jobs = {}
    for ev in events:
        job_id = ev["job"]
        rec = jobs.get(job_id)
        if rec is None:
            rec = jobs[job_id] = JobRecord(job_id)
        kind = ev["ev"]
        if kind == "submitted":
            spec = ev.get("spec") or {}
            rec.spec = spec
            rec.hash = ev.get("hash")
            rec.priority = ev.get("priority", 0)
            rec.label = spec.get("label", "")
            rec.rate = spec.get("rate")
            rec.submitted_t = ev.get("t")
            rec.state = "submitted"
        elif kind == "leased":
            rec.state = "leased"
            rec.attempts = ev.get("attempt", rec.attempts + 1)
            rec.worker = ev.get("worker")
        elif kind == "running":
            rec.state = "running"
        elif kind == "retry":
            rec.state = "retry"
            rec.error = ev.get("error")
            rec.not_before = ev.get("not_before", 0.0)
            rec.retry_delays.append(ev.get("delay", 0.0))
            rec.worker = None
        elif kind == "requeued":
            rec.state = "submitted"
            rec.worker = None
        elif kind == "done":
            rec.state = "done"
            rec.cached = ev.get("cached", False)
            rec.artifact = ev.get("artifact")
            rec.wall_time = ev.get("wall_time")
            rec.worker = ev.get("worker", rec.worker)
            rec.finished_t = ev.get("t")
        elif kind == "dead":
            rec.state = "dead"
            rec.error = ev.get("error", rec.error)
            rec.attempts = ev.get("attempts", rec.attempts)
            rec.finished_t = ev.get("t")
    return jobs


class JobStore:
    """Append-only journal writer plus recovery reader for one root."""

    def __init__(self, root):
        os.makedirs(root, exist_ok=True)
        self.root = root
        self.path = os.path.join(root, JOURNAL)
        self._fh = None

    def append(self, ev, job_id, **fields):
        """Durably append one event; returns the event dict."""
        event = {"ev": ev, "job": job_id}
        event.update(fields)
        if self._fh is None:
            self._fh = open(self.path, "a")
        self._fh.write(json.dumps(event, separators=(",", ":")))
        self._fh.write("\n")
        # Flush + fsync per event: an acted-on transition must survive
        # the process dying the very next instant, or recovery would
        # disagree with what the dead scheduler already did.
        self._fh.flush()
        os.fsync(self._fh.fileno())
        return event

    def recover(self):
        """Fold the on-disk journal into ``{job_id: JobRecord}``."""
        return fold_events(read_events(self.path))

    def close(self):
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
