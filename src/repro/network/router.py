"""The two-stage VC router with incremental allocation and packet chaining.

Pipeline model (Section 2.4). A flit that wins switch allocation (SA)
in cycle *t* traverses the switch (ST) in cycle *t+1*; in simulation it
is dequeued at the end of cycle *t* and its output channel is modeled
with an extra cycle of delay for ST. Incremental allocation (Mukherjee
et al.; Kumar et al.) holds the input->output switch connection for the
rest of the packet: body/tail flits stream through held connections
without re-arbitrating. Output VCs are allocated only to packets that
win switch allocation (the combined switch/VC allocator of Kumar et
al.), lowest-numbered free VC first (Section 4.6).

Packet chaining adds a PC allocator in parallel with the switch
allocator. Each cycle:

1.  Force-release connections that hit the starvation threshold
    (Section 2.5) and, in age mode, connections preempted by
    higher-priority requests.
2.  Stream one flit on every usable held connection; connections whose
    input VC is empty or whose output VC is out of credits are released
    (Kumar et al.), and connections whose tail departs become chaining
    opportunities.
3.  Collect SA requests. Eligibility uses the connection state at the
    *beginning* of the cycle: packets participate in SA only if their
    input and output are not currently connected.
4.  Collect PC candidates (definite and speculative classes, Section
    2.4), OR-reduce, and run the PC allocator in parallel with the
    switch allocator.
5.  Commit SA grants (assign output VCs, form connections, launch
    flits with look-ahead routing).
6.  Validate PC grants against SA outcomes (conflict detection): a PC
    grant is dropped if the switch allocator granted the same input —
    unless the chained packet sits directly behind a departing tail in
    the VC that won SA — or if the speculated event (a connectionless
    tail winning SA for the output; the candidate's own input
    connection releasing) did not occur. Valid chains take over the
    connection registers; the chained packet streams starting next
    cycle and never enters switch allocation.
"""

from time import perf_counter

from repro.allocators import make_allocator
from repro.arbiters import RoundRobinArbiter
from repro.core.chaining import (
    ChainStats,
    PCCandidate,
    PCRequestBuilder,
    scheme_admits,
)
from repro.core.starvation import StarvationControl, StarvationMode
from repro.obs.trace import NULL_TRACE

#: Priority boost that makes non-speculative switch requests always beat
#: speculative ones in "speculative" VC-allocation mode. Larger than any
#: age-escalated packet priority that occurs in practice.
_NONSPECULATIVE_BOOST = 1_000_000


class Router:
    """One NoC router. Wired to channels by :class:`~repro.network.network.Network`."""

    def __init__(self, router_id, radix, config, routing):
        from repro.network.buffer import VirtualChannel  # avoid cycle at import

        self.router_id = router_id
        self.radix = radix
        self.config = config
        self.routing = routing

        P, V = radix, config.num_vcs
        depth = config.vc_buf_depth
        #: Shared buffered-flit counter (see VirtualChannel.fill): kept
        #: exact by every queue mutation, including direct pushes in
        #: tests, so the idle fast path in step() can trust it.
        self._fill = [0]
        self.in_vcs = [
            [VirtualChannel(depth, fill=self._fill) for _ in range(V)]
            for _ in range(P)
        ]

        # Connection registers (incremental allocation state).
        self.conn_in = [None] * P  # input p -> connected output port
        self.conn_out = [None] * P  # output o -> (input p, vc v)
        self.conn_age = [0] * P  # cycles the connection on output o has been held

        # Downstream credit and output-VC state per output port.
        self.credits = [[depth] * V for _ in range(P)]
        self.out_vc_busy = [[False] * V for _ in range(P)]

        # Allocators. Both operate on OR-reduced P x P request matrices.
        # Seeds are derived from (config seed, router id, role) so
        # randomized allocators are reproducible across processes and
        # runs regardless of how many networks this process built before.
        self.switch_alloc = make_allocator(
            config.allocator, P, P, seed=self._alloc_seed(0)
        )
        self.pc_alloc = make_allocator(
            config.pc_allocator, P, P, seed=self._alloc_seed(1)
        )
        # Split VC allocation (Mullins et al.): a separate VC allocator
        # runs a pipeline stage ahead of SA over the (P*V) x (P*V)
        # input-VC x output-VC request space. In "speculative" mode,
        # unallocated heads additionally bid for the switch in the same
        # cycle at lower priority; the grant is only usable if an output
        # VC can be claimed at commit time (Peh & Dally speculation).
        self.split_va = config.vc_allocation in ("split", "speculative")
        self.speculative_va = config.vc_allocation == "speculative"
        self.vc_alloc = (
            make_allocator(config.allocator, P * V, P * V,
                           seed=self._alloc_seed(2))
            if self.split_va
            else None
        )
        #: SA grants wasted on failed speculation (no output VC free).
        self.wasted_speculations = 0
        #: Per-allocator request/grant totals (grant efficiency =
        #: grants / requests); incremented identically by the reference
        #: and fast step paths, published via Network.publish_metrics.
        self.alloc_counters = {
            "sa_requests": 0, "sa_grants": 0,
            "pc_requests": 0, "pc_grants": 0,
            "vc_requests": 0, "vc_grants": 0,
        }
        self.scheme = config.chaining
        self.starvation = StarvationControl.from_config(
            config.starvation_threshold, config.age_period
        )

        # Per-input arbiters mapping a port-level grant back to a VC.
        self._sa_vc_arbiters = [RoundRobinArbiter(V) for _ in range(P)]
        self._pc_vc_arbiters = [RoundRobinArbiter(V) for _ in range(P)]

        self.chain_stats = ChainStats()
        #: Flits sent per output port (utilization accounting).
        self.port_flits = [0] * P

        #: Observability: event bus (Network installs the real one) and
        #: optional phase profiler. Both default to inert so the hot
        #: path pays one attribute load + branch per emission site.
        self.trace = NULL_TRACE
        self.profiler = None
        # Component labels for the profiler's hot-spot attribution
        # (per-allocator wall time inside the sa/pc/vc_alloc phases).
        self._prof_sa = "alloc:" + config.allocator
        self._prof_pc = "alloc:" + config.pc_allocator
        #: Fault injection: a RouterFaultView installed by the
        #: FaultController, or None (the common, zero-overhead case).
        self.faults = None

        # Wiring, installed by Network.
        self.in_flit_channels = [None] * P  # read side
        self.out_flit_channels = [None] * P  # write side (includes ST cycle)
        self.credit_return_channels = [None] * P  # read: credits for output o
        self.credit_up_channels = [None] * P  # write: credits for input p
        self.downstream_router = [None] * P  # Router id beyond output o, or None
        self.is_terminal_port = [False] * P

    def _alloc_seed(self, role):
        # Distinct per (config seed, router, allocator role); the exact
        # mixing only has to be stable, not cryptographic.
        return (self.config.seed * 1_000_003 + self.router_id) * 4 + role

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def state_dict(self, ctx):
        """Serialize all mutable router state.

        Channels are owned by their writer, so the write-side channels
        here (``out_flit_channels``, ``credit_up_channels``) cover every
        inter-router channel exactly once; terminal injection/ejection
        channels are owned by sources and sinks.
        """
        return {
            "in_vcs": [
                [vc.state_dict(ctx) for vc in vcs] for vcs in self.in_vcs
            ],
            "conn_in": list(self.conn_in),
            "conn_out": [
                list(held) if held is not None else None
                for held in self.conn_out
            ],
            "conn_age": list(self.conn_age),
            "credits": [list(c) for c in self.credits],
            "out_vc_busy": [list(b) for b in self.out_vc_busy],
            "switch_alloc": self.switch_alloc.state_dict(),
            "pc_alloc": self.pc_alloc.state_dict(),
            "vc_alloc": (
                self.vc_alloc.state_dict() if self.vc_alloc is not None else None
            ),
            "wasted_speculations": self.wasted_speculations,
            "alloc_counters": dict(self.alloc_counters),
            "sa_vc_arbiters": [a.state_dict() for a in self._sa_vc_arbiters],
            "pc_vc_arbiters": [a.state_dict() for a in self._pc_vc_arbiters],
            # ChainStats is a flat dataclass of ints; vars() gives the
            # same mapping as dataclasses.asdict() without its recursive
            # deep-copy machinery (this runs per router per digest).
            "chain_stats": dict(vars(self.chain_stats)),
            "port_flits": list(self.port_flits),
            "out_flit_channels": [
                chan.state_dict(ctx) if chan is not None else None
                for chan in self.out_flit_channels
            ],
            "credit_up_channels": [
                chan.state_dict(ctx) if chan is not None else None
                for chan in self.credit_up_channels
            ],
        }

    def load_state(self, state, ctx):
        for vcs, vc_states in zip(self.in_vcs, state["in_vcs"]):
            for vc, vc_state in zip(vcs, vc_states):
                vc.load_state(vc_state, ctx)
        self.conn_in = list(state["conn_in"])
        # JSON turns the (input, vc) holder tuples into lists; convert
        # back because the router compares them with tuple equality.
        self.conn_out = [
            tuple(held) if held is not None else None
            for held in state["conn_out"]
        ]
        self.conn_age = list(state["conn_age"])
        self.credits = [list(c) for c in state["credits"]]
        self.out_vc_busy = [list(b) for b in state["out_vc_busy"]]
        self.switch_alloc.load_state(state["switch_alloc"])
        self.pc_alloc.load_state(state["pc_alloc"])
        if self.vc_alloc is not None:
            self.vc_alloc.load_state(state["vc_alloc"])
        self.wasted_speculations = state["wasted_speculations"]
        self.alloc_counters = dict(state["alloc_counters"])
        for arb, s in zip(self._sa_vc_arbiters, state["sa_vc_arbiters"]):
            arb.load_state(s)
        for arb, s in zip(self._pc_vc_arbiters, state["pc_vc_arbiters"]):
            arb.load_state(s)
        self.chain_stats = ChainStats(**state["chain_stats"])
        self.port_flits = list(state["port_flits"])
        for chan, s in zip(self.out_flit_channels, state["out_flit_channels"]):
            if chan is not None:
                chan.load_state(s, ctx)
        for chan, s in zip(self.credit_up_channels, state["credit_up_channels"]):
            if chan is not None:
                chan.load_state(s, ctx)

    # ------------------------------------------------------------------
    # Phase A: arrivals (called by Network before any router allocates)
    # ------------------------------------------------------------------

    def receive(self, cycle):
        tr = self.trace
        fv = self.faults
        for p in range(self.radix):
            chan = self.in_flit_channels[p]
            if chan is not None:
                for flit in chan.receive(cycle):
                    if fv is not None and fv.intercept(self, p, flit, cycle):
                        continue
                    self.in_vcs[p][flit.vc].push(flit)
                    if tr.active and flit.is_head:
                        # Head arrival anchors the per-hop span: the
                        # wait until sa_grant/pc_chain is allocation
                        # latency (obs.spans).
                        tr.emit(
                            "head_arrived", cycle, router=self.router_id,
                            in_port=p, vc=flit.vc, pid=flit.packet.pid,
                        )
            chan = self.credit_return_channels[p]
            if chan is not None:
                for vc in chan.receive(cycle):
                    self.credits[p][vc] += 1

    # ------------------------------------------------------------------
    # Phase B: allocation and traversal
    # ------------------------------------------------------------------

    def step(self, cycle):
        fv = self.faults
        if fv is not None:
            self._fault_prepass(cycle, fv)
        if self._fill[0] == 0 and self._no_held_connections():
            # Fully idle: no buffered flits, no held connections. None
            # of the pipeline phases can do anything (no releases, no
            # streaming, no SA/PC requests, no VC waits, no ages), so
            # skip the connection-table copies and set/dict churn
            # entirely. The only per-cycle state an idle router evolves
            # is the chaining cycle counter.
            if self.scheme.enabled:
                self.chain_stats.cycles += 1
            return
        if self.profiler is not None:
            self._step_profiled(cycle)
        else:
            self._step_unprofiled(cycle)

    def _no_held_connections(self):
        for held in self.conn_out:
            if held is not None:
                return False
        return True

    def _step_unprofiled(self, cycle):
        """The pipeline phases with zero profiling overhead.

        Kept free of ``perf_counter`` lookups and ``prof is not None``
        branches; :meth:`_step_profiled` is the timed twin. Both must
        execute the same phase sequence.
        """
        conn_in_start = list(self.conn_in)
        conn_out_start = list(self.conn_out)

        released_inputs = set()  # inputs freed this cycle (any reason)
        inhibited = set()  # inputs/outputs barred from chaining this cycle
        releasing = {}  # output -> (input, vc): tail departed, chainable

        self._forced_releases(cycle, released_inputs, inhibited)
        departed_vcs = self._stream_connections(
            cycle, releasing, released_inputs, inhibited
        )
        sa_requests, sa_contrib, forming_tails = self._collect_sa_requests(
            conn_in_start, conn_out_start
        )
        builder = None
        pc_grants = {}
        if self.scheme.enabled and (releasing or forming_tails):
            builder = self._collect_pc_candidates(
                conn_in_start, releasing, forming_tails, released_inputs,
                inhibited, sa_requests,
            )
            matrix = self._pc_request_matrix(builder)
            if matrix:
                pc_grants = self.pc_alloc.allocate(matrix)
                counters = self.alloc_counters
                counters["pc_requests"] += len(matrix)
                counters["pc_grants"] += len(pc_grants)
        if sa_requests:
            sa_grants = self.switch_alloc.allocate(sa_requests)
            counters = self.alloc_counters
            counters["sa_requests"] += len(sa_requests)
            counters["sa_grants"] += len(sa_grants)
        else:
            sa_grants = {}
        sa_winner_vc, sa_tail_outputs = self._commit_sa(
            cycle, sa_grants, sa_contrib, departed_vcs
        )
        if pc_grants:
            self._commit_pc(
                cycle, pc_grants, builder, sa_grants, sa_winner_vc,
                sa_tail_outputs, releasing, conn_out_start,
            )
        if self.split_va:
            # VC allocation commits at the end of the cycle: newly
            # allocated packets bid for the switch starting next cycle
            # (the extra pipeline stage of a split VA router).
            self._split_vc_allocation(cycle)
        self._end_of_cycle(departed_vcs)
        if self.scheme.enabled:
            self.chain_stats.cycles += 1

    def _pc_request_matrix(self, builder):
        matrix = builder.request_matrix()
        if matrix and not self.config.pc_priorities:
            # Section 4.7 ablation: collapse the two PC classes
            # (packet-level priorities remain).
            matrix = {
                pair: prio % PCRequestBuilder.CLASS_STRIDE
                for pair, prio in matrix.items()
            }
        return matrix

    def _step_profiled(self, cycle):
        """Same phases as :meth:`_step_unprofiled`, with the profiler's
        per-phase and per-allocator timers pre-bound once per cycle."""
        prof = self.profiler
        now = perf_counter  # pre-bound: one global lookup per cycle
        add = prof.add
        t0 = now()
        conn_in_start = list(self.conn_in)
        conn_out_start = list(self.conn_out)

        released_inputs = set()
        inhibited = set()
        releasing = {}

        self._forced_releases(cycle, released_inputs, inhibited)
        t1 = now(); add("release", t1 - t0); t0 = t1
        departed_vcs = self._stream_connections(
            cycle, releasing, released_inputs, inhibited
        )
        t1 = now(); add("stream", t1 - t0); t0 = t1

        sa_requests, sa_contrib, forming_tails = self._collect_sa_requests(
            conn_in_start, conn_out_start
        )
        t1 = now(); add("sa_collect", t1 - t0); t0 = t1

        builder = None
        pc_grants = {}
        if self.scheme.enabled and (releasing or forming_tails):
            builder = self._collect_pc_candidates(
                conn_in_start, releasing, forming_tails, released_inputs,
                inhibited, sa_requests,
            )
            matrix = self._pc_request_matrix(builder)
            if matrix:
                ta = now()
                pc_grants = self.pc_alloc.allocate(matrix)
                prof.add_component("pc", self._prof_pc, now() - ta)
                counters = self.alloc_counters
                counters["pc_requests"] += len(matrix)
                counters["pc_grants"] += len(pc_grants)
        t1 = now(); add("pc", t1 - t0); t0 = t1

        if sa_requests:
            ta = now()
            sa_grants = self.switch_alloc.allocate(sa_requests)
            prof.add_component("sa", self._prof_sa, now() - ta)
            counters = self.alloc_counters
            counters["sa_requests"] += len(sa_requests)
            counters["sa_grants"] += len(sa_grants)
        else:
            sa_grants = {}
        sa_winner_vc, sa_tail_outputs = self._commit_sa(
            cycle, sa_grants, sa_contrib, departed_vcs
        )
        t1 = now(); add("sa", t1 - t0); t0 = t1

        if pc_grants:
            self._commit_pc(
                cycle, pc_grants, builder, sa_grants, sa_winner_vc,
                sa_tail_outputs, releasing, conn_out_start,
            )
        t1 = now(); add("pc", t1 - t0); t0 = t1

        if self.split_va:
            self._split_vc_allocation(cycle)
        t1 = now(); add("vc_alloc", t1 - t0); t0 = t1

        self._end_of_cycle(departed_vcs)
        if self.scheme.enabled:
            self.chain_stats.cycles += 1
        add("end", now() - t0)

    # --- 0. fault pre-pass (only when fault injection is attached) -------

    def _fault_prepass(self, cycle, fv):
        """Graceful degradation: dispose of fault-damaged state.

        Runs before allocation each cycle so the rest of the pipeline
        never sees a dead output or a killed packet at a VC front:

        1. Held connections to dead outputs are torn down.
        2. In-service packets routed to a dead output are killed (their
           earlier flits are already lost downstream).
        3. Killed packets' in-service state is aborted (output VC and
           connection freed) and their buffered flits purged, returning
           one upstream credit per purged flit.
        4. Head flits whose look-ahead route points at a dead output
           are re-routed (the fault-aware routing function detours);
           unroutable packets are killed.
        """
        tr = self.trace
        for o in range(self.radix):
            held = self.conn_out[o]
            if held is not None and fv.is_dead_out(o):
                p, _v = held
                self.conn_out[o] = None
                self.conn_in[p] = None
                if tr.active:
                    tr.emit(
                        "conn_torn_down", cycle, router=self.router_id,
                        port=o, in_port=p, vc=_v, reason="link_down",
                    )
        for p in range(self.radix):
            for v, vcobj in enumerate(self.in_vcs[p]):
                packet = vcobj.active_packet
                if packet is not None:
                    if not packet.killed and fv.is_dead_out(vcobj.active_out_port):
                        fv.kill(packet, cycle, "link_down")
                    if packet.killed:
                        self._abort_in_service(cycle, p, v, vcobj)
                self._purge_killed(cycle, p, v, vcobj, fv)
                flit = vcobj.front()
                if (
                    flit is not None
                    and flit.is_head
                    and vcobj.active_packet is None
                    and fv.is_dead_out(flit.out_port)
                ):
                    new_port, new_class = self.routing.next_hop(
                        self.router_id, flit.packet
                    )
                    if fv.is_dead_out(new_port):
                        fv.kill(flit.packet, cycle, "unroutable")
                        self._purge_killed(cycle, p, v, vcobj, fv)
                    else:
                        flit.out_port = new_port
                        flit.vc_class = new_class

    def _abort_in_service(self, cycle, p, v, vcobj):
        """Free the output VC / connection held by a killed packet."""
        o, w = vcobj.active_out_port, vcobj.active_out_vc
        if self.conn_in[p] == o and self.conn_out[o] == (p, v):
            self.conn_out[o] = None
            self.conn_in[p] = None
            tr = self.trace
            if tr.active:
                tr.emit(
                    "conn_torn_down", cycle, router=self.router_id,
                    port=o, in_port=p, vc=v, reason="packet_killed",
                )
        self.out_vc_busy[o][w] = False
        vcobj.active_packet = None
        vcobj.active_out_port = None
        vcobj.active_out_vc = None

    def _purge_killed(self, cycle, p, v, vcobj, fv):
        """Drop killed packets' flits off the VC front, crediting upstream."""
        up = self.credit_up_channels[p]
        while vcobj.queue and vcobj.queue[0].packet.killed:
            flit = vcobj.queue.popleft()
            self._fill[0] -= 1
            vcobj.wait_cycles = 0
            if up is not None:
                up.send(v, cycle)
            fv.flit_purged(self, p, flit, cycle)

    # --- 1. starvation-control releases --------------------------------

    def _forced_releases(self, cycle, released_inputs, inhibited):
        starv = self.starvation
        if starv.mode is StarvationMode.DISABLED:
            return
        for o in range(self.radix):
            held = self.conn_out[o]
            if held is None:
                continue
            p, v = held
            if starv.mode is StarvationMode.THRESHOLD:
                if starv.must_release(self.conn_age[o]):
                    self._starvation_tick(cycle, o, p, v)
                    self._release(cycle, o, released_inputs, "starvation")
                    inhibited.add(("in", p))
                    inhibited.add(("out", o))
            else:  # AGE mode: preempt on higher-priority waiting request
                holder = self.in_vcs[p][v].active_packet
                holder_prio = holder.priority if holder else 0
                if self._higher_priority_waiter(o, holder_prio):
                    self._starvation_tick(cycle, o, p, v)
                    self._release(cycle, o, released_inputs, "preempt")
                    inhibited.add(("in", p))
                    inhibited.add(("out", o))

    def _starvation_tick(self, cycle, o, p, v):
        tr = self.trace
        if tr.active:
            tr.emit(
                "starvation_tick", cycle, router=self.router_id, port=o,
                in_port=p, vc=v, age=self.conn_age[o],
                mode=self.starvation.mode.value,
            )

    def _competing_waiter(self, output):
        """Any head flit in a *different* VC wanting this output?

        The pseudo-circuit release condition (Ahn & Kim): a connection
        is only reused when nobody else wants the output.
        """
        holder = self.conn_out[output]
        for p in range(self.radix):
            for v, vcobj in enumerate(self.in_vcs[p]):
                if (p, v) == holder:
                    continue
                if vcobj.front() is not None and vcobj.front_out_port() == output:
                    return True
        return False

    def _higher_priority_waiter(self, output, holder_prio):
        """Any waiting head flit routed to ``output`` beating the holder?"""
        starv = self.starvation
        for p in range(self.radix):
            for v, vcobj in enumerate(self.in_vcs[p]):
                flit = vcobj.front()
                if flit is None:
                    continue
                port = vcobj.front_out_port()
                if port != output:
                    continue
                if self.conn_out[output] == (p, v):
                    continue  # the holder itself
                prio = starv.packet_priority(flit.packet.priority, vcobj.wait_cycles)
                if prio > holder_prio:
                    return True
        return False

    def _release(self, cycle, output, released_inputs, reason):
        held = self.conn_out[output]
        if held is None:
            return
        p, _ = held
        self.conn_out[output] = None
        self.conn_in[p] = None
        # conn_age is deliberately NOT reset here: a chain established in
        # this cycle's PC commit inherits the connection (and its age, so
        # starvation control keeps accumulating across chained packets).
        # New connections reset the age when they form.
        released_inputs.add(p)
        tr = self.trace
        if tr.active:
            tr.emit(
                "conn_released", cycle, router=self.router_id, port=output,
                in_port=p, reason=reason,
            )

    # --- 2. stream held connections ------------------------------------

    def _stream_connections(self, cycle, releasing, released_inputs, inhibited):
        departed_vcs = set()
        for o in range(self.radix):
            held = self.conn_out[o]
            if held is None:
                continue
            p, v = held
            vcobj = self.in_vcs[p][v]
            flit = vcobj.front()
            packet = vcobj.active_packet
            if flit is None or packet is None or flit.packet is not packet:
                # Input VC empty (or desynchronized): unusable, release.
                self._release(cycle, o, released_inputs, "empty")
                continue
            w = vcobj.active_out_vc
            if self.credits[o][w] == 0:
                # Output VC out of credits: unusable, release (Kumar et al.).
                self._release(cycle, o, released_inputs, "no_credit")
                continue
            self._send_flit(cycle, flit, p, v, o, w)
            departed_vcs.add((p, v))
            if flit.is_tail:
                if self.scheme.enabled and self.starvation.chainable(self.conn_age[o]) \
                        and ("out", o) not in inhibited:
                    # Pseudo-circuit semantics (Ahn & Kim): reuse the
                    # connection only if no other VC wants the output;
                    # packet chaining holds it regardless (Section 5).
                    if not (
                        self.config.pseudo_circuit_release
                        and self._competing_waiter(o)
                    ):
                        releasing[o] = (p, v)
                self._release(cycle, o, released_inputs, "tail")
        return departed_vcs

    def _send_flit(self, cycle, flit, p, v, o, w):
        """Dequeue and launch a flit: credits, VC bookkeeping, look-ahead."""
        vcobj = self.in_vcs[p][v]
        vcobj.pop()
        self.credits[o][w] -= 1
        flit.vc = w
        if flit.is_tail:
            # The output VC frees as soon as the tail has been sent on
            # it; the next packet's flits follow in order behind it.
            self.out_vc_busy[o][w] = False
        if flit.is_head:
            downstream = self.downstream_router[o]
            if downstream is not None:
                flit.out_port, flit.vc_class = self.routing.next_hop(
                    downstream, flit.packet
                )
        self.out_flit_channels[o].send(flit, cycle)
        self.port_flits[o] += 1
        up = self.credit_up_channels[p]
        if up is not None:
            up.send(v, cycle)
        tr = self.trace
        if tr.active:
            tr.emit(
                "flit_routed", cycle, router=self.router_id, port=o,
                pid=flit.packet.pid, idx=flit.index, in_port=p, in_vc=v,
                out_vc=w,
            )
            if flit.is_tail:
                tr.emit(
                    "vc_free", cycle, router=self.router_id, port=o, vc=w,
                    pid=flit.packet.pid,
                )

    # --- 3. switch-allocator requests -----------------------------------

    def _collect_sa_requests(self, conn_in_start, conn_out_start):
        sa_requests = {}
        sa_contrib = {}
        forming_tails = {}
        starv = self.starvation
        fv = self.faults
        for p in range(self.radix):
            if conn_in_start[p] is not None:
                continue  # inputs connected at cycle start sit out of SA
            for v, vcobj in enumerate(self.in_vcs[p]):
                flit = vcobj.front()
                if flit is None:
                    continue
                if vcobj.active_packet is not None:
                    # Parked mid-packet: connection was released earlier;
                    # re-bid using the already-assigned output VC.
                    o = vcobj.active_out_port
                    if conn_out_start[o] is not None:
                        continue
                    if self.credits[o][vcobj.active_out_vc] == 0:
                        continue
                elif flit.is_head:
                    if self.split_va and not self.speculative_va:
                        # Heads need a VC-allocator grant (a previous
                        # cycle) before they may bid for the switch.
                        continue
                    o = flit.out_port
                    if conn_out_start[o] is not None:
                        continue
                    if self._free_out_vc(o, flit.vc_class) is None:
                        continue
                else:  # pragma: no cover - body flit without state
                    raise AssertionError("body flit at VC front without state")
                if fv is not None and (flit.packet.killed or fv.is_dead_out(o)):
                    # Belt-and-braces: the fault pre-pass already purged
                    # or re-routed these, but a fault applied mid-cycle
                    # must never win allocation toward a dead port.
                    continue
                prio = starv.packet_priority(flit.packet.priority, vcobj.wait_cycles)
                if self.speculative_va:
                    # Non-speculative requests (packets that already hold
                    # an output VC) beat speculative head requests.
                    if vcobj.active_packet is not None:
                        prio += _NONSPECULATIVE_BOOST
                pair = (p, o)
                if pair not in sa_requests or prio > sa_requests[pair]:
                    sa_requests[pair] = prio
                sa_contrib.setdefault(pair, []).append((v, prio))
                if flit.is_tail:
                    forming_tails.setdefault(o, []).append((p, v))
        return sa_requests, sa_contrib, forming_tails

    def _free_out_vc(self, output, vc_class):
        """Lowest-numbered free output VC of the class with a credit."""
        credits = self.credits[output]
        busy = self.out_vc_busy[output]
        for w in self.config.vc_class_range(vc_class):
            if not busy[w] and credits[w] > 0:
                return w
        return None

    # --- 4. packet-chaining candidates ----------------------------------

    def _collect_pc_candidates(
        self, conn_in_start, releasing, forming_tails, released_inputs,
        inhibited, sa_requests,
    ):
        from repro.core.chaining import ChainingScheme

        builder = PCRequestBuilder(self.scheme)
        chainable_outputs = set(releasing) | set(forming_tails)
        if not chainable_outputs:
            return builder
        if self.scheme is ChainingScheme.ANY_INPUT:
            inputs = range(self.radix)
        else:
            # Same-input schemes only ever chain packets from the input
            # that holds (or is forming) the connection.
            inputs = {holder[0] for holder in releasing.values()}
            inputs.update(
                hp for holders in forming_tails.values() for hp, _ in holders
            )
        for p in inputs:
            input_connected = conn_in_start[p] is not None
            input_released = p in released_inputs and ("in", p) not in inhibited
            if input_connected and not input_released:
                # Holding a connection beyond this cycle: no VC of this
                # input can chain.
                continue
            for v, vcobj in enumerate(self.in_vcs[p]):
                self._candidates_from_vc(
                    builder, p, v, vcobj, input_connected,
                    conn_in_start[p], releasing, forming_tails, sa_requests,
                    chainable_outputs,
                )
        return builder

    def _candidates_from_vc(
        self, builder, p, v, vcobj, input_connected, input_start_output,
        releasing, forming_tails, sa_requests, chainable_outputs,
    ):
        flit = vcobj.front()
        if flit is None:
            return

        front_bids_sa = False
        if vcobj.active_packet is not None:
            targets = [(flit, vcobj.active_out_port, ())]
            front_bids_sa = (p, vcobj.active_out_port) in sa_requests
        elif flit.is_head:
            targets = [(flit, flit.out_port, ())]
            front_bids_sa = (p, flit.out_port) in sa_requests
        else:  # pragma: no cover - body flit at front without VC state
            return

        # Flits behind an SA-bidding front flit (Section 2.4): only the
        # next packet's head directly behind a departing tail can chain.
        if front_bids_sa and flit.is_tail and len(vcobj.queue) > 1:
            behind = vcobj.queue[1]
            if behind.is_head:
                targets.append((behind, behind.out_port, (("front_departs",),)))

        if all(o not in chainable_outputs for _, o, _ in targets):
            return

        for cand_flit, o, extra_requires in targets:
            requires = extra_requires
            if input_connected and input_start_output != o:
                # The candidate's input was part of another connection
                # to a different output; the chain depends on that
                # release, so it bids in the speculative class
                # (Section 2.4). Same-output candidates are chaining
                # onto their own input's releasing connection — the
                # canonical (definite) case.
                requires = (("own_release",),) + requires

            if cand_flit is flit and front_bids_sa and not extra_requires:
                # The front flit itself bids SA for this output; its
                # only PC use is chaining onto a connection formed by a
                # *different* tail for the same output this cycle.
                if o not in forming_tails:
                    continue

            holder = None
            if o in releasing:
                holder = releasing[o]
                conn_age = self.conn_age[o]
            elif o in forming_tails:
                requires = requires + (("sa_tail", o),)
                conn_age = 0  # the connection forms this cycle
            else:
                continue

            # Length-aware threshold check: don't chain a packet the
            # starvation control would cut mid-transfer (Section 4.7).
            remaining_flits = cand_flit.packet.size - cand_flit.index
            if not self.starvation.chainable(conn_age, remaining_flits):
                continue

            if not self._pc_output_vc_ok(cand_flit, vcobj):
                continue

            if holder is not None:
                admitted = scheme_admits(self.scheme, p, v, holder[0], holder[1])
            else:
                admitted = any(
                    scheme_admits(self.scheme, p, v, hp, hv)
                    for hp, hv in forming_tails[o]
                    if not (cand_flit is flit and (hp, hv) == (p, v))
                )
            if not admitted:
                continue
            builder.add(
                PCCandidate(
                    input_port=p,
                    vc=v,
                    output_port=o,
                    priority=cand_flit.packet.priority,
                    flit=cand_flit,
                    speculative=bool(requires),
                    requires=requires,
                )
            )

    def _pc_output_vc_ok(self, flit, vcobj):
        """Check (b)+(c) of Section 2.2: a usable output VC with credit."""
        if vcobj.active_packet is not None and flit is vcobj.front():
            # Partially transmitted packet: only its assigned VC is eligible.
            return self.credits[vcobj.active_out_port][vcobj.active_out_vc] > 0
        return self._free_out_vc(flit.out_port, flit.vc_class) is not None

    # --- 5. switch-allocation commit ------------------------------------

    def _commit_sa(self, cycle, sa_grants, sa_contrib, departed_vcs):
        sa_winner_vc = {}
        sa_tail_outputs = {}
        for p, o in sa_grants.items():
            entries = sa_contrib[(p, o)]
            best = max(prio for _, prio in entries)
            vcs = [v for v, prio in entries if prio == best]
            v = self._sa_vc_arbiters[p].select(vcs)
            self._sa_vc_arbiters[p].update(v)
            vcobj = self.in_vcs[p][v]
            flit = vcobj.front()

            tr = self.trace
            if vcobj.active_packet is None:
                w = self._free_out_vc(o, flit.vc_class)
                if w is None:
                    # Only reachable for speculative-VA head grants: the
                    # output VC pool changed since eligibility; the SA
                    # grant is wasted (the output idles this cycle).
                    self.wasted_speculations += 1
                    continue
                vcobj.start_packet(flit.packet, o, w)
                self.out_vc_busy[o][w] = True
                if tr.active:
                    tr.emit(
                        "vc_alloc", cycle, router=self.router_id, port=o,
                        vc=w, pid=flit.packet.pid,
                    )
            else:
                w = vcobj.active_out_vc

            if tr.active:
                tr.emit(
                    "sa_grant", cycle, router=self.router_id, port=o,
                    pid=flit.packet.pid, in_port=p, vc=v, out_vc=w,
                )
            self._send_flit(cycle, flit, p, v, o, w)
            departed_vcs.add((p, v))
            sa_winner_vc[p] = v
            if flit.is_tail:
                # Connection forms and releases in the same cycle; a
                # chained packet may take it over (validated in PC commit).
                sa_tail_outputs[o] = (p, v)
            else:
                self.conn_in[p] = o
                self.conn_out[o] = (p, v)
                self.conn_age[o] = 0
                if tr.active:
                    tr.emit(
                        "conn_held", cycle, router=self.router_id, port=o,
                        in_port=p, vc=v, pid=flit.packet.pid,
                    )
        return sa_winner_vc, sa_tail_outputs

    # --- 6. packet-chaining commit / conflict detection ------------------

    def _commit_pc(
        self, cycle, pc_grants, builder, sa_grants, sa_winner_vc,
        sa_tail_outputs, releasing, conn_out_start,
    ):
        for p, o in pc_grants.items():
            candidates = builder.candidates_for(p, o)
            chosen = None
            for cand in candidates:
                if self._pc_candidate_valid(
                    cand, p, o, sa_grants, sa_winner_vc, sa_tail_outputs
                ):
                    chosen = cand
                    break
            if chosen is None:
                if p in sa_grants:
                    self.chain_stats.conflicts += 1
                else:
                    self.chain_stats.speculation_failures += 1
                continue
            self._establish_chain(cycle, chosen, o, releasing, sa_tail_outputs)

    def _behind_winning_tail(self, cand, p, sa_winner_vc, sa_tail_outputs):
        """True if cand sits directly behind this input's SA-granted tail."""
        return (
            sa_winner_vc.get(p) == cand.vc
            and any(pv == (p, cand.vc) for pv in sa_tail_outputs.values())
        )

    def _pc_candidate_valid(
        self, cand, p, o, sa_grants, sa_winner_vc, sa_tail_outputs
    ):
        vcobj = self.in_vcs[p][cand.vc]
        if vcobj.front() is not cand.flit:
            return False  # buffer moved unexpectedly
        # Conflict detection: SA granted the same input. The only
        # compatible case is the candidate directly behind the departing
        # tail that won SA in the same VC (Section 2.4's lower-priority
        # behind-the-head requests exist exactly to enable it).
        if p in sa_grants and not self._behind_winning_tail(
            cand, p, sa_winner_vc, sa_tail_outputs
        ):
            return False
        for req in cand.requires:
            kind = req[0]
            if kind == "own_release":
                # The release already happened during streaming (we only
                # admitted released inputs), so nothing further to check.
                continue
            if kind == "front_departs":
                if sa_winner_vc.get(p) != cand.vc:
                    return False
                continue
            if kind == "sa_tail":
                target = req[1]
                winner = sa_tail_outputs.get(target)
                if winner is None:
                    return False
                # Scheme filter against the actual connection former.
                if not scheme_admits(self.scheme, p, cand.vc, winner[0], winner[1]):
                    return False
                continue
            raise AssertionError(f"unknown PC requirement {req!r}")
        # Re-check an output VC is available *now* (tails freed VCs and
        # SA winners claimed VCs during this cycle).
        if vcobj.active_packet is not None:
            return self.credits[vcobj.active_out_port][vcobj.active_out_vc] > 0
        return self._free_out_vc(o, cand.flit.vc_class) is not None

    def _establish_chain(self, cycle, cand, o, releasing, sa_tail_outputs):
        p, v = cand.input_port, cand.vc
        vcobj = self.in_vcs[p][v]
        tr = self.trace
        if vcobj.active_packet is None:
            w = self._free_out_vc(o, cand.flit.vc_class)
            vcobj.start_packet(cand.flit.packet, o, w)
            self.out_vc_busy[o][w] = True
            if tr.active:
                tr.emit(
                    "vc_alloc", cycle, router=self.router_id, port=o, vc=w,
                    pid=cand.flit.packet.pid,
                )
        self.conn_in[p] = o
        self.conn_out[o] = (p, v)
        holder = releasing.get(o)
        if holder is None:
            # Chained onto a connection formed (and released) by an SA
            # tail grant this cycle: a fresh connection.
            holder = sa_tail_outputs[o]
            self.conn_age[o] = 0
        # else: the connection persists across the chain; its age keeps
        # accumulating so starvation control still triggers (Section 2.5).
        self.chain_stats.record_chain(
            same_input=holder[0] == p, same_vc=holder == (p, v)
        )
        if tr.active:
            tr.emit(
                "pc_chain", cycle, router=self.router_id, port=o,
                pid=cand.flit.packet.pid, in_port=p, vc=v,
                same_input=holder[0] == p, same_vc=holder == (p, v),
                speculative=cand.speculative,
            )

    def _split_vc_allocation(self, cycle):
        """Assign output VCs to waiting head flits (split-VA mode).

        Each unallocated head flit requests its lowest-numbered free
        output VC; the VC allocator resolves conflicts. Winners hold
        the VC (out_vc_busy) immediately, which is exactly what reduces
        the free-VC pool available to packet chaining compared to the
        combined allocator (Section 2.2).
        """
        V = self.config.num_vcs
        requests = {}
        requesters = {}
        for p in range(self.radix):
            for v, vcobj in enumerate(self.in_vcs[p]):
                flit = vcobj.front()
                if flit is None or not flit.is_head:
                    continue
                if vcobj.active_packet is not None:
                    continue  # already allocated (or mid-packet)
                w = self._free_out_vc(flit.out_port, flit.vc_class)
                if w is None:
                    continue
                pair = (p * V + v, flit.out_port * V + w)
                requests[pair] = flit.packet.priority
                requesters[pair] = (p, v, flit, w)
        if not requests:
            return
        tr = self.trace
        prof = self.profiler
        if prof is not None:
            ta = perf_counter()
            grants = self.vc_alloc.allocate(requests)
            prof.add_component("vc_alloc", self._prof_sa,
                               perf_counter() - ta)
        else:
            grants = self.vc_alloc.allocate(requests)
        counters = self.alloc_counters
        counters["vc_requests"] += len(requests)
        counters["vc_grants"] += len(grants)
        for in_idx, out_idx in grants.items():
            p, v, flit, w = requesters[(in_idx, out_idx)]
            self.in_vcs[p][v].start_packet(flit.packet, flit.out_port, w)
            self.out_vc_busy[flit.out_port][w] = True
            if tr.active:
                tr.emit(
                    "vc_alloc", cycle, router=self.router_id,
                    port=flit.out_port, vc=w, pid=flit.packet.pid,
                )

    # --- 7. end of cycle --------------------------------------------------

    def _end_of_cycle(self, departed_vcs):
        for o in range(self.radix):
            if self.conn_out[o] is not None:
                self.conn_age[o] += 1
        for p in range(self.radix):
            for v, vcobj in enumerate(self.in_vcs[p]):
                if (p, v) in departed_vcs:
                    continue
                flit = vcobj.front()
                if flit is None:
                    continue
                if flit.is_head or vcobj.active_packet is not None:
                    vcobj.wait_cycles += 1
                    flit.packet.blocked_cycles += 1

    # --- introspection ----------------------------------------------------

    def occupancy(self, port):
        """Downstream queue occupancy estimate for UGAL (credit deficit)."""
        depth = self.config.vc_buf_depth
        return sum(depth - c for c in self.credits[port])

    def total_buffered_flits(self):
        return sum(
            len(vc) for vcs in self.in_vcs for vc in vcs
        )
