"""Pipelined channels for flits and credits."""

from collections import deque

from repro.network.flit import Flit


class PipelinedChannel:
    """A fixed-latency channel modeled as a timestamped FIFO.

    ``send(item, now)`` schedules delivery at ``now + delay``;
    ``receive(now)`` pops every item due at ``now``. Sends must be
    issued with non-decreasing timestamps, which the cycle loop
    guarantees.
    """

    __slots__ = ("delay", "_queue")

    def __init__(self, delay):
        if delay < 1:
            raise ValueError(f"channel delay must be >= 1, got {delay}")
        self.delay = delay
        self._queue = deque()

    def send(self, item, now):
        self._queue.append((now + self.delay, item))

    def receive(self, now):
        """Pop and return all items due at cycle ``now`` (in send order)."""
        out = []
        q = self._queue
        while q and q[0][0] <= now:
            due, item = q[0]
            if due < now:
                raise AssertionError("channel item missed its delivery cycle")
            q.popleft()
            out.append(item)
        return out

    def __len__(self):
        return len(self._queue)

    def state_dict(self, ctx):
        """Serialize the in-flight items (flits or credit VC indices).

        Due cycles are absolute, so the restored network must resume at
        the same ``Network.cycle`` the snapshot was taken at.
        """
        items = []
        for due, item in self._queue:
            if isinstance(item, Flit):
                items.append({"due": due, "flit": ctx.flit(item)})
            else:
                items.append({"due": due, "credit": item})
        return {"items": items}

    def load_state(self, state, ctx):
        self._queue.clear()
        for entry in state["items"]:
            if "flit" in entry:
                self._queue.append((entry["due"], ctx.flit(entry["flit"])))
            else:
                self._queue.append((entry["due"], entry["credit"]))

    def drain_state(self, ctx):
        """Serialize and remove every queued item (shard boundary export).

        The shard protocol moves a boundary channel's in-flight items
        into a window-stamped exchange file; the writer's live copy is
        emptied so the items exist in exactly one place at a time.
        """
        state = self.state_dict(ctx)
        self._queue.clear()
        return state

    def absorb_state(self, state, ctx):
        """Append serialized items to the queue (shard boundary import).

        Unlike :meth:`load_state` this keeps existing items: a channel
        whose delay exceeds the lookahead window legitimately holds
        imports from several windows at once. Items arrive in send
        order per window and windows are imported in order, so due
        timestamps stay non-decreasing (asserted against the tail).
        """
        entries = state["items"]
        if not entries:
            return
        q = self._queue
        if q and q[-1][0] > entries[0]["due"]:
            raise AssertionError(
                "boundary import would reorder channel deliveries"
            )
        for entry in entries:
            if "flit" in entry:
                q.append((entry["due"], ctx.flit(entry["flit"])))
            else:
                q.append((entry["due"], entry["credit"]))

    def items(self):
        """The queued payloads, in send order (introspection only).

        The invariant checker walks channel contents to prove credit
        conservation; callers must not mutate the underlying queue.
        """
        return (item for _, item in self._queue)

    @property
    def in_flight(self):
        return len(self._queue)
