"""Cycle-accurate NoC model: flits, buffers, channels, routers, network.

This package is the BookSim-equivalent substrate the paper's evaluation
runs on: virtual-channel flow control (Dally, 1992), credit-based
backpressure with a two-cycle credit loop, a two-stage router pipeline
with look-ahead routing, incremental allocation (connection holding, as
in the Alpha 21364 router study and Kumar et al.'s single-cycle router),
a combined switch/VC allocator, and the paper's packet-chaining stage.
"""

from repro.network.flit import Flit, Packet
from repro.network.buffer import VirtualChannel
from repro.network.channel import PipelinedChannel
from repro.network.config import NetworkConfig
from repro.network.router import Router
from repro.network.network import Network

__all__ = [
    "Flit",
    "Packet",
    "VirtualChannel",
    "PipelinedChannel",
    "NetworkConfig",
    "Router",
    "Network",
]
