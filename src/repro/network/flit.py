"""Packets and flits.

A packet is the unit of routing and allocation state; a flit is the
unit of buffering, switching and flow control. Head flits carry the
look-ahead route (the output port to use at the router they are
arriving at) and the VC class; body/tail flits inherit the connection
their head established.
"""

_next_packet_id = 0


def _take_packet_id():
    global _next_packet_id
    pid = _next_packet_id
    _next_packet_id += 1
    return pid


def peek_next_packet_id():
    """The pid the next Packet will receive (checkpoint bookkeeping)."""
    return _next_packet_id


def set_next_packet_id(value):
    """Reset the pid counter (checkpoint restore / deterministic tests).

    Pids appear in trace events and checkpoints, so bit-identical
    replays need the counter to start from a known value rather than
    wherever previous simulations in the process left it.
    """
    global _next_packet_id
    if value < 0:
        raise ValueError(f"packet id must be >= 0, got {value}")
    _next_packet_id = value


class Packet:
    """A network packet.

    Attributes:
        pid: globally unique packet id.
        src / dest: terminal indices.
        size: length in flits (>= 1).
        vc_class: traffic class used to partition VCs (UGAL needs two).
        priority: allocation priority (higher wins); used by
            age-based starvation control.
        time_created: cycle the packet was generated at the source.
        time_injected: cycle its head flit entered the network (left the
            source queue), or None while queued.
        time_ejected: cycle its tail flit was ejected, or None.
        route_state: routing-algorithm scratch state (e.g. UGAL phase
            and intermediate router).
        blocked_cycles: cycles the packet's head flit spent at the front
            of a VC without departing (Section 4.3's blocking latency).
        killed: fault injection dropped one of its flits; the remains
            are purged wherever they are buffered (repro.faults).
        corrupted: a flit was corrupted in flight; the sink discards
            the packet like a failed end-to-end CRC check.
        rtag: the ReliableTransport's flow/sequence tag, or None when
            end-to-end reliability is off.
    """

    __slots__ = (
        "pid",
        "src",
        "dest",
        "size",
        "vc_class",
        "priority",
        "time_created",
        "time_injected",
        "time_ejected",
        "route_state",
        "blocked_cycles",
        "payload",
        "killed",
        "corrupted",
        "rtag",
    )

    def __init__(self, src, dest, size, time_created, vc_class=0, priority=0,
                 payload=None):
        if size < 1:
            raise ValueError(f"packet size must be >= 1, got {size}")
        self.pid = _take_packet_id()
        self.src = src
        self.dest = dest
        self.size = size
        self.vc_class = vc_class
        self.priority = priority
        self.time_created = time_created
        self.time_injected = None
        self.time_ejected = None
        self.route_state = None
        self.blocked_cycles = 0
        self.payload = payload
        self.killed = False
        self.corrupted = False
        self.rtag = None

    def flits(self):
        """Materialize this packet's flits, in order."""
        return [
            Flit(self, index, index == 0, index == self.size - 1)
            for index in range(self.size)
        ]

    def __repr__(self):
        return (
            f"Packet(pid={self.pid}, {self.src}->{self.dest}, "
            f"size={self.size}, class={self.vc_class})"
        )


class Flit:
    """One flow-control unit of a packet.

    ``out_port`` and ``vc_class`` are the look-ahead routing fields: they
    describe the output port / VC class to use at the router this flit
    is arriving at, and are (re)written each hop before the flit is put
    on the output channel.
    """

    __slots__ = ("packet", "index", "is_head", "is_tail", "out_port", "vc_class", "vc")

    def __init__(self, packet, index, is_head, is_tail):
        self.packet = packet
        self.index = index
        self.is_head = is_head
        self.is_tail = is_tail
        self.out_port = None
        self.vc_class = packet.vc_class
        # The input VC index at the router (or sink) this flit is
        # traveling to; written by the sender when the flit departs.
        self.vc = None

    def __repr__(self):
        kind = "H" if self.is_head else ("T" if self.is_tail else "B")
        if self.is_head and self.is_tail:
            kind = "HT"
        return f"Flit({kind}, pid={self.packet.pid}, idx={self.index})"
