"""Input virtual-channel buffer state."""

from collections import deque


class VirtualChannel:
    """One input VC: a FIFO of flits plus in-service packet state.

    The VC services one packet at a time (the one whose flit is at the
    front). ``active_*`` fields describe that packet once its head flit
    has departed: the output port it is using, the output VC it was
    assigned, and whether it is mid-transmission. They are cleared when
    the tail departs. This mirrors the "control state logic of input
    VCs" the paper relies on for chaining partially transmitted packets.
    """

    __slots__ = (
        "capacity",
        "queue",
        "active_packet",
        "active_out_port",
        "active_out_vc",
        "wait_cycles",
        "fill",
    )

    def __init__(self, capacity, fill=None):
        if capacity < 1:
            raise ValueError(f"VC capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.queue = deque()
        self.active_packet = None
        self.active_out_port = None
        self.active_out_vc = None
        # Consecutive cycles the current front head flit has waited
        # without departing (blocking-latency accounting, Section 4.3).
        self.wait_cycles = 0
        # Shared occupancy cell (a one-element list) owned by the
        # router: every push/pop updates it, so the router knows its
        # total buffered-flit count in O(1) for the idle fast path.
        self.fill = fill

    def __len__(self):
        return len(self.queue)

    def state_dict(self, ctx):
        return {
            "queue": [ctx.flit(flit) for flit in self.queue],
            "active_packet": (
                ctx.packet_ref(self.active_packet)
                if self.active_packet is not None
                else None
            ),
            "active_out_port": self.active_out_port,
            "active_out_vc": self.active_out_vc,
            "wait_cycles": self.wait_cycles,
        }

    def load_state(self, state, ctx):
        old_len = len(self.queue)
        self.queue = deque(ctx.flit(f) for f in state["queue"])
        if self.fill is not None:
            self.fill[0] += len(self.queue) - old_len
        self.active_packet = (
            ctx.packet(state["active_packet"])
            if state["active_packet"] is not None
            else None
        )
        self.active_out_port = state["active_out_port"]
        self.active_out_vc = state["active_out_vc"]
        self.wait_cycles = state["wait_cycles"]

    @property
    def free_slots(self):
        return self.capacity - len(self.queue)

    def front(self):
        """The flit at the head of the buffer, or None."""
        return self.queue[0] if self.queue else None

    def push(self, flit):
        if len(self.queue) >= self.capacity:
            raise OverflowError("VC buffer overflow (credit protocol violated)")
        self.queue.append(flit)
        if self.fill is not None:
            self.fill[0] += 1

    def pop(self):
        """Dequeue the front flit.

        The router sets ``active_*`` (via :meth:`start_packet`) when a
        head flit is granted; popping the tail clears it.
        """
        flit = self.queue.popleft()
        if flit.is_tail:
            self.active_packet = None
            self.active_out_port = None
            self.active_out_vc = None
        self.wait_cycles = 0
        if self.fill is not None:
            self.fill[0] -= 1
        return flit

    def start_packet(self, packet, out_port, out_vc):
        """Record the front packet's switch/VC allocation state."""
        self.active_packet = packet
        self.active_out_port = out_port
        self.active_out_vc = out_vc

    def in_service(self):
        """True if a packet is partially transmitted from this VC."""
        return self.active_packet is not None

    def front_out_port(self):
        """Output port requested by the front flit's packet.

        For a head flit this is the look-ahead route it carries; for a
        body/tail flit it is the in-service packet's stored route.
        """
        flit = self.front()
        if flit is None:
            return None
        if flit.is_head:
            return flit.out_port
        return self.active_out_port

    def front_is_parked_body(self):
        """True if the front flit is a body/tail without a connection.

        Happens when a connection was released mid-packet (credit
        starvation or starvation control): the packet must re-win switch
        allocation using its already-assigned output VC.
        """
        flit = self.front()
        return flit is not None and not flit.is_head and self.in_service()
