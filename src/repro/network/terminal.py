"""Terminal source and sink models.

A source owns an unbounded packet queue (so offered load past
saturation simply backs up), a one-flit-per-cycle injection channel
into its router's terminal input port, and the credit state for that
port's VCs. A sink consumes flits immediately and returns credits after
the configured credit delay, and reports completed packets to the
statistics collector.
"""

from collections import deque

from repro.obs.trace import NULL_TRACE


class Source:
    """Injects queued packets into the attached router, one flit/cycle."""

    def __init__(self, terminal, config, routing, flit_channel, credit_channel,
                 stats=None, trace=None):
        self.terminal = terminal
        self.config = config
        self.routing = routing
        self.flit_channel = flit_channel
        self.credit_channel = credit_channel  # read side: credits coming back
        self.stats = stats
        self.trace = trace if trace is not None else NULL_TRACE
        self.credits = [config.vc_buf_depth] * config.num_vcs
        self.queue = deque()  # packets waiting to start injection
        self._flits = None  # remaining flits of the in-flight packet
        self._vc = None  # VC the in-flight packet uses at the router
        #: Lifetime flits put on the injection channel (flit-conservation
        #: accounting; never reset, unlike the windowed collector).
        self.flits_sent = 0
        #: Cleared when the attached router dies (fault injection).
        self.alive = True

    def enqueue(self, packet):
        self.queue.append(packet)

    def state_dict(self, ctx):
        """Serialize source state plus its write-side injection channel."""
        return {
            "credits": list(self.credits),
            "queue": [ctx.packet_ref(p) for p in self.queue],
            "inflight": (
                [ctx.flit(f) for f in self._flits]
                if self._flits else None
            ),
            "vc": self._vc,
            "flits_sent": self.flits_sent,
            "alive": self.alive,
            "flit_channel": self.flit_channel.state_dict(ctx),
        }

    def load_state(self, state, ctx):
        self.credits = list(state["credits"])
        self.queue = deque(ctx.packet(pid) for pid in state["queue"])
        self._flits = (
            deque(ctx.flit(f) for f in state["inflight"])
            if state["inflight"] is not None
            else None
        )
        self._vc = state["vc"]
        self.flits_sent = state["flits_sent"]
        self.alive = state["alive"]
        self.flit_channel.load_state(state["flit_channel"], ctx)

    @property
    def backlog(self):
        """Packets not yet fully injected."""
        return len(self.queue) + (1 if self._flits else 0)

    def receive_credits(self, cycle):
        for vc in self.credit_channel.receive(cycle):
            self.credits[vc] += 1

    def step(self, cycle):
        """Send at most one flit into the injection channel."""
        if not self._flits:
            self._start_next_packet(cycle)
        if not self._flits:
            return
        if self._flits[0].packet.killed:
            # Fault injection killed the packet mid-injection: its
            # remaining flits never enter the network (nothing was
            # charged for them, so nothing needs returning).
            self._flits = None
            self._vc = None
            return
        if self.credits[self._vc] == 0:
            return
        flit = self._flits.popleft()
        flit.vc = self._vc
        self.credits[self._vc] -= 1
        self.flit_channel.send(flit, cycle)
        self.flits_sent += 1
        tr = self.trace
        if tr.active:
            tr.emit(
                "flit_injected", cycle, terminal=self.terminal,
                pid=flit.packet.pid, idx=flit.index, vc=self._vc,
            )

    def _start_next_packet(self, cycle):
        if not self.queue:
            return
        packet = self.queue[0]
        # The routing decision (UGAL's adaptive choice) is made when the
        # head flit is about to enter the network, using then-current
        # local congestion.
        self.routing.prepare(packet)
        vc = self._pick_vc(packet.vc_class)
        if vc is None:
            return  # no credit on any VC of the class; retry next cycle
        self.queue.popleft()
        flits = packet.flits()
        first_router, _ = self.routing.topology.terminal_attachment(packet.src)
        head = flits[0]
        # Look-ahead routing for the first hop: the output port at the
        # first router, and the VC class for the hop leaving it. The VC
        # *index* at the first router (head.vc) is chosen below from the
        # packet's initial class.
        head.out_port, head.vc_class = self.routing.next_hop(first_router, packet)
        packet.time_injected = cycle
        if self.stats is not None:
            self.stats.record_injected(packet, cycle)
        self._flits = deque(flits)
        self._vc = vc

    def _pick_vc(self, vc_class):
        """Lowest-numbered VC of the class with a credit (Section 4.6)."""
        for vc in self.config.vc_class_range(vc_class):
            if self.credits[vc] > 0:
                return vc
        return None


class Sink:
    """Consumes ejected flits and returns credits upstream."""

    def __init__(self, terminal, flit_channel, credit_channel, stats,
                 trace=None):
        self.terminal = terminal
        self.flit_channel = flit_channel  # read side: flits arriving
        self.credit_channel = credit_channel  # write side: credits back
        self.stats = stats
        self.trace = trace if trace is not None else NULL_TRACE
        #: Lifetime flits taken off the ejection channel (including
        #: discarded corrupted/killed ones — they left the network).
        self.flits_consumed = 0

    def state_dict(self, ctx):
        """Serialize sink state plus its write-side credit channel."""
        return {
            "flits_consumed": self.flits_consumed,
            "credit_channel": self.credit_channel.state_dict(ctx),
        }

    def load_state(self, state, ctx):
        self.flits_consumed = state["flits_consumed"]
        self.credit_channel.load_state(state["credit_channel"], ctx)

    def step(self, cycle):
        tr = self.trace
        for flit in self.flit_channel.receive(cycle):
            self.credit_channel.send(flit.vc, cycle)
            self.flits_consumed += 1
            packet = flit.packet
            if packet.corrupted or packet.killed:
                # End-to-end check failed (fault injection): the flit
                # still consumed buffer space and returns its credit,
                # but the packet is not delivered to the terminal, so
                # it never reaches the statistics collector.
                if flit.is_tail and tr.active:
                    tr.emit(
                        "packet_killed", cycle, terminal=self.terminal,
                        pid=packet.pid, reason="corrupted_at_sink",
                    )
                continue
            if flit.is_tail:
                packet.time_ejected = cycle
                self.stats.record_ejected(packet, cycle)
            self.stats.record_flit_ejected(flit, cycle)
            if tr.active:
                packet = flit.packet
                fields = {
                    "terminal": self.terminal,
                    "pid": packet.pid,
                    "idx": flit.index,
                    "tail": flit.is_tail,
                }
                if flit.is_tail:
                    fields["latency"] = cycle - packet.time_created
                    fields["blocked"] = packet.blocked_cycles
                tr.emit("flit_ejected", cycle, **fields)
