"""Network assembly: routers, channels, terminals, and the cycle loop.

Wiring: for every inter-router link, one flit channel (delay = link
delay + 1 cycle of switch traversal) and one credit channel back
(delay = ``credit_delay``, the paper's "two cycles to generate and
transmit credits upstream"). Terminals get an injection channel into
their router's terminal port and an ejection channel to a sink that
consumes flits immediately.
"""

import random

from repro.network.channel import PipelinedChannel
from repro.network.router import Router
from repro.network.terminal import Sink, Source
from repro.obs.trace import NULL_TRACE
from repro.routing import build_routing
from repro.stats import StatsCollector
from repro.topology import build_topology

#: Extra channel latency for the switch-traversal (ST) pipeline stage.
ST_LATENCY = 1


class BackendFallbackWarning(UserWarning):
    """``backend="fast"`` could not be honored; the reference core runs.

    Emitted (never silently swallowed) when the fast core is requested
    but unavailable (NumPy-less fallback is fine — the fast core does
    not require it — but e.g. fault injection or a reliable transport
    force the reference core).
    """


def build_network(config, stats=None, trace=None, allow_fast=True):
    """Build the Network subclass selected by ``config.backend``.

    ``allow_fast=False`` forces the reference core with a
    :class:`BackendFallbackWarning` even when ``backend="fast"`` — the
    runner uses it when a requested feature (fault injection, reliable
    transport) is outside the fast core's supported envelope. The
    config object is never mutated, so checkpoint config hashes and
    saved config files keep the user's backend choice.
    """
    import warnings

    if config.backend == "fast":
        if allow_fast:
            from repro.fastcore import FastNetwork

            return FastNetwork(config, stats=stats, trace=trace)
        warnings.warn(
            "backend='fast' is not supported for this run "
            "(fault injection / reliable transport require the "
            "reference core); falling back to backend='reference'",
            BackendFallbackWarning,
            stacklevel=2,
        )
    return Network(config, stats=stats, trace=trace)


class Network:
    """A complete simulated network for one NetworkConfig."""

    #: Router/terminal classes this network builds; the fast core's
    #: subclass swaps in its implementations while reusing the wiring.
    ROUTER_CLS = Router
    SOURCE_CLS = Source
    SINK_CLS = Sink

    def __init__(self, config, stats=None, trace=None):
        self.config = config
        self.topology = build_topology(config)
        self.rng = random.Random(config.seed)
        self.routing = build_routing(config, self.topology, self.rng)
        self.routing.attach_congestion(self._congestion)
        self.stats = stats or StatsCollector(self.topology.num_terminals)
        #: Event trace bus shared by routers, sources, and sinks. The
        #: default NULL_TRACE never activates, so untraced runs pay one
        #: branch per emission site.
        self.trace = trace if trace is not None else NULL_TRACE
        self.profiler = None
        #: Optional periodic state sampler (obs.sampler). None costs one
        #: branch per cycle.
        self.sampler = None
        self.cycle = 0

        router_cls = type(self).ROUTER_CLS
        self.routers = [
            router_cls(r, self.topology.radix(r), config, self.routing)
            for r in range(self.topology.num_routers)
        ]
        for router in self.routers:
            router.trace = self.trace
        self.sources = []
        self.sinks = []
        self._wire()

        #: Robustness hooks (repro.faults); all None in the common case
        #: so the cycle loop pays one branch each when they are off.
        self.faults = None
        self.transport = None
        self.invariants = None
        self.watchdog = None
        #: The routers/sources/sinks actually stepped each cycle.
        #: Aliases of the full lists until a router dies (retire_router)
        #: or a shard mask is applied, so the common path has no
        #: filtering cost.
        self.step_routers = self.routers
        self.step_sources = self.sources
        self.step_sinks = self.sinks
        #: Conservative-lookahead shard mask (repro.parallel), or None.
        #: Unlike fault retirement, a masked network is still fully
        #: snapshotable: the un-stepped components simply hold their
        #: initial (or restored) state, and the shard protocol is what
        #: keeps the stepped subset equivalent to a global run.
        self.shard_mask = None

    # ------------------------------------------------------------------

    def _wire(self):
        topo, cfg = self.topology, self.config
        for r, router in enumerate(self.routers):
            for port in range(topo.radix(r)):
                link = topo.link(r, port)
                if link is None:
                    continue
                if router.out_flit_channels[port] is not None:
                    continue  # already wired from the other side
                other = self.routers[link.dest_router]
                fwd = PipelinedChannel(link.delay + ST_LATENCY)
                bwd = PipelinedChannel(link.delay + ST_LATENCY)
                cr_fwd = PipelinedChannel(cfg.credit_delay)
                cr_bwd = PipelinedChannel(cfg.credit_delay)
                # r:port --fwd--> other:dest_port, credits come back on cr_bwd
                router.out_flit_channels[port] = fwd
                other.in_flit_channels[link.dest_port] = fwd
                other.credit_up_channels[link.dest_port] = cr_bwd
                router.credit_return_channels[port] = cr_bwd
                # other:dest_port --bwd--> r:port
                other.out_flit_channels[link.dest_port] = bwd
                router.in_flit_channels[port] = bwd
                router.credit_up_channels[port] = cr_fwd
                other.credit_return_channels[link.dest_port] = cr_fwd
                router.downstream_router[port] = link.dest_router
                other.downstream_router[link.dest_port] = r

        for t in range(topo.num_terminals):
            r, port = topo.terminal_attachment(t)
            router = self.routers[r]
            router.is_terminal_port[port] = True
            inj = PipelinedChannel(cfg.injection_channel_delay)
            ej = PipelinedChannel(cfg.injection_channel_delay + ST_LATENCY)
            inj_credit = PipelinedChannel(cfg.credit_delay)
            ej_credit = PipelinedChannel(cfg.credit_delay)
            source = type(self).SOURCE_CLS(
                t, cfg, self.routing, inj, inj_credit, self.stats,
                trace=self.trace,
            )
            sink = type(self).SINK_CLS(t, ej, ej_credit, self.stats,
                                       trace=self.trace)
            router.in_flit_channels[port] = inj
            router.credit_up_channels[port] = inj_credit
            router.out_flit_channels[port] = ej
            router.credit_return_channels[port] = ej_credit
            router.downstream_router[port] = None
            self.sources.append(source)
            self.sinks.append(sink)

    def _congestion(self, router, port):
        return self.routers[router].occupancy(port)

    # ------------------------------------------------------------------

    @property
    def num_terminals(self):
        return self.topology.num_terminals

    def inject(self, packet):
        """Queue a packet at its source terminal."""
        self.stats.record_created(packet, self.cycle)
        if self.transport is not None:
            self.transport.on_inject(packet, self.cycle)
        self.sources[packet.src].enqueue(packet)

    def attach_profiler(self, profiler):
        """Enable per-phase pipeline profiling on every router."""
        self.profiler = profiler
        for router in self.routers:
            router.profiler = profiler
        return profiler

    def detach_profiler(self):
        """Stop profiling; returns the detached profiler (or None).

        The profiler keeps its accumulated epochs, so it can be
        re-attached later (or to another network) and continue
        accumulating — only cycles executed while attached are counted.
        """
        profiler = self.profiler
        self.profiler = None
        for router in self.routers:
            router.profiler = None
        return profiler

    def attach_sampler(self, sampler):
        """Enable periodic network-state snapshots (obs.sampler)."""
        self.sampler = sampler
        return sampler.bind(self)

    def attach_faults(self, controller):
        """Arm a FaultController against this network."""
        self.faults = controller
        return controller.bind(self)

    def attach_transport(self, transport):
        """Enable end-to-end reliable delivery (repro.faults.reliability)."""
        self.transport = transport
        return transport.bind(self)

    def attach_invariants(self, checker):
        """Enable the periodic runtime invariant checker."""
        self.invariants = checker
        return checker.bind(self)

    def attach_watchdog(self, watchdog):
        """Enable deadlock/livelock detection."""
        self.watchdog = watchdog
        return watchdog.bind(self)

    def retire_router(self, router_id):
        """Stop simulating a dead router and silence its sources.

        Called by the FaultController on a router fault. Sinks keep
        stepping (they only drain their ejection channels), and the
        Router object stays in ``self.routers`` for introspection.
        """
        router = self.routers[router_id]
        self.step_routers = [r for r in self.step_routers if r is not router]
        keep = []
        for source in self.step_sources:
            attached, _ = self.topology.terminal_attachment(source.terminal)
            if attached == router_id:
                source.alive = False
            else:
                keep.append(source)
        self.step_sources = keep

    def apply_shard_mask(self, router_ids, terminal_ids):
        """Step only the given routers/terminals (repro.parallel).

        The masked-out components stay constructed (their channel
        objects are the landing zones for boundary imports and their
        state is part of snapshots), they just never execute. Refused on
        a network that already has faults attached — shard workers run
        the plain deterministic core only.
        """
        if self.faults is not None or self.transport is not None:
            raise ValueError(
                "cannot shard a network with fault injection or a "
                "reliable transport attached"
            )
        router_set = frozenset(router_ids)
        terminal_set = frozenset(terminal_ids)
        self.shard_mask = {
            "routers": sorted(router_set),
            "terminals": sorted(terminal_set),
        }
        self.step_routers = [
            r for i, r in enumerate(self.routers) if i in router_set
        ]
        self.step_sources = [
            s for s in self.sources if s.terminal in terminal_set
        ]
        self.step_sinks = [
            s for s in self.sinks if s.terminal in terminal_set
        ]

    def step(self):
        """Advance the network by one cycle."""
        now = self.cycle
        if self.faults is not None:
            self.faults.begin_cycle(now)
        for router in self.step_routers:
            router.receive(now)
        for sink in self.step_sinks:
            sink.step(now)
        for source in self.step_sources:
            source.receive_credits(now)
            source.step(now)
        for router in self.step_routers:
            router.step(now)
        if self.transport is not None:
            self.transport.step(now)
        if self.sampler is not None:
            self.sampler.maybe_sample(now)
        if self.invariants is not None:
            self.invariants.maybe_check(now)
        if self.watchdog is not None:
            self.watchdog.maybe_check(now)
        self.cycle += 1
        if self.profiler is not None:
            self.profiler.end_cycle()

    def run(self, cycles):
        for _ in range(cycles):
            self.step()

    # --- checkpointing ----------------------------------------------------

    def snapshot(self, ctx):
        """Serialize the complete network state for a checkpoint.

        ``ctx`` is a :class:`repro.checkpoint.SnapshotContext`; shared
        Packet objects are interned in it by pid so flits of one packet
        (and terminal queues holding it) reference a single record.

        Fault injection and the reliable transport are refused: their
        state (pending faults, retransmission queues, per-flow sequence
        windows) is not snapshotable yet, and silently dropping it would
        resume a different experiment. Observers (trace, profiler,
        sampler, invariants, watchdog) are deliberately excluded — they
        re-attach to a restored run exactly as to a fresh one.
        """
        from repro.checkpoint import CheckpointError
        from repro.core.serialization import rng_state_to_json

        if self.faults is not None or self.transport is not None:
            raise CheckpointError(
                "cannot checkpoint a network with fault injection or a "
                "reliable transport attached"
            )
        if self.step_routers is not self.routers and self.shard_mask is None:
            raise CheckpointError(
                "cannot checkpoint a degraded network (retired routers)"
            )
        return {
            "cycle": self.cycle,
            "rng": rng_state_to_json(self.rng),
            "routers": [r.state_dict(ctx) for r in self.routers],
            "sources": [s.state_dict(ctx) for s in self.sources],
            "sinks": [s.state_dict(ctx) for s in self.sinks],
            "stats": self.stats.state_dict(),
        }

    def restore(self, state, ctx):
        """Restore a snapshot into this (freshly built) network.

        The network must have been constructed from the same config the
        snapshot was taken with; repro.checkpoint enforces that via the
        config hash before calling this.
        """
        from repro.core.serialization import set_rng_state

        self.cycle = state["cycle"]
        set_rng_state(self.rng, state["rng"])
        for router, s in zip(self.routers, state["routers"]):
            router.load_state(s, ctx)
        for source, s in zip(self.sources, state["sources"]):
            source.load_state(s, ctx)
        for sink, s in zip(self.sinks, state["sinks"]):
            sink.load_state(s, ctx)
        self.stats.load_state(state["stats"])

    # --- introspection ----------------------------------------------------

    def in_flight_flits(self):
        """Flits buffered in routers or on channels (not source queues)."""
        total = sum(r.total_buffered_flits() for r in self.routers)
        for router in self.routers:
            for chan in router.out_flit_channels:
                if chan is not None:
                    total += chan.in_flight
        return total

    def backlog(self):
        """Packets waiting at live sources (offered but not injected).

        Dead terminals' queues are excluded: those packets can never be
        injected, and counting them would keep drain loops from
        terminating after a router fault.
        """
        return sum(s.backlog for s in self.sources if s.alive)

    def chain_stats(self):
        """Aggregated chaining counters across all routers."""
        from repro.core.chaining import ChainStats

        total = ChainStats()
        for router in self.routers:
            total = total.merged(router.chain_stats)
        return total

    def publish_metrics(self, registry):
        """Publish collector, chaining, and router-level metrics."""
        self.stats.publish_metrics(registry)
        self.chain_stats().publish_metrics(registry)
        registry.counter(
            "cycles", help="Simulated cycles executed"
        ).inc(self.cycle)
        registry.counter(
            "router_flits_sent",
            help="Flits sent across all router output ports",
        ).inc(sum(sum(r.port_flits) for r in self.routers))
        registry.counter(
            "wasted_speculations",
            help="SA grants wasted on failed VC speculation",
        ).inc(sum(r.wasted_speculations for r in self.routers))
        registry.gauge(
            "in_flight_flits", help="Flits buffered in routers or on channels"
        ).set(self.in_flight_flits())
        self._publish_alloc_metrics(registry)
        if self.faults is not None:
            self.faults.publish_metrics(registry)
        if self.transport is not None:
            self.transport.publish_metrics(registry)
        if self.invariants is not None:
            self.invariants.publish_metrics(registry)
        return registry

    def _publish_alloc_metrics(self, registry):
        """Per-allocator grant efficiency: grants issued / requests
        presented, summed over routers — the paper's allocation-quality
        quantity, exported alongside the raw request/grant totals."""
        totals = {key: 0 for key in
                  ("sa_requests", "sa_grants", "pc_requests", "pc_grants",
                   "vc_requests", "vc_grants")}
        for router in self.routers:
            for key, value in router.alloc_counters.items():
                totals[key] += value
        names = {
            "sa": ("Switch allocation", self.config.allocator),
            "pc": ("Packet-chaining allocation", self.config.pc_allocator),
            "vc": ("Split VC allocation", self.config.allocator),
        }
        for role, (stage, alloc_name) in names.items():
            requests = totals[f"{role}_requests"]
            grants = totals[f"{role}_grants"]
            registry.counter(
                f"{role}_alloc_requests",
                help=f"{stage} requests presented ({alloc_name})",
            ).inc(requests)
            registry.counter(
                f"{role}_alloc_grants",
                help=f"{stage} grants issued ({alloc_name})",
            ).inc(grants)
            registry.gauge(
                f"{role}_grant_efficiency",
                help=f"{stage} grants / requests ({alloc_name})",
            ).set(grants / requests if requests else 0.0)
