"""Network assembly: routers, channels, terminals, and the cycle loop.

Wiring: for every inter-router link, one flit channel (delay = link
delay + 1 cycle of switch traversal) and one credit channel back
(delay = ``credit_delay``, the paper's "two cycles to generate and
transmit credits upstream"). Terminals get an injection channel into
their router's terminal port and an ejection channel to a sink that
consumes flits immediately.
"""

import random

from repro.network.channel import PipelinedChannel
from repro.network.router import Router
from repro.network.terminal import Sink, Source
from repro.obs.trace import NULL_TRACE
from repro.routing import build_routing
from repro.stats import StatsCollector
from repro.topology import build_topology

#: Extra channel latency for the switch-traversal (ST) pipeline stage.
ST_LATENCY = 1


class Network:
    """A complete simulated network for one NetworkConfig."""

    def __init__(self, config, stats=None, trace=None):
        self.config = config
        self.topology = build_topology(config)
        self.rng = random.Random(config.seed)
        self.routing = build_routing(config, self.topology, self.rng)
        self.routing.attach_congestion(self._congestion)
        self.stats = stats or StatsCollector(self.topology.num_terminals)
        #: Event trace bus shared by routers, sources, and sinks. The
        #: default NULL_TRACE never activates, so untraced runs pay one
        #: branch per emission site.
        self.trace = trace if trace is not None else NULL_TRACE
        self.profiler = None
        #: Optional periodic state sampler (obs.sampler). None costs one
        #: branch per cycle.
        self.sampler = None
        self.cycle = 0

        self.routers = [
            Router(r, self.topology.radix(r), config, self.routing)
            for r in range(self.topology.num_routers)
        ]
        for router in self.routers:
            router.trace = self.trace
        self.sources = []
        self.sinks = []
        self._wire()

    # ------------------------------------------------------------------

    def _wire(self):
        topo, cfg = self.topology, self.config
        for r, router in enumerate(self.routers):
            for port in range(topo.radix(r)):
                link = topo.link(r, port)
                if link is None:
                    continue
                if router.out_flit_channels[port] is not None:
                    continue  # already wired from the other side
                other = self.routers[link.dest_router]
                fwd = PipelinedChannel(link.delay + ST_LATENCY)
                bwd = PipelinedChannel(link.delay + ST_LATENCY)
                cr_fwd = PipelinedChannel(cfg.credit_delay)
                cr_bwd = PipelinedChannel(cfg.credit_delay)
                # r:port --fwd--> other:dest_port, credits come back on cr_bwd
                router.out_flit_channels[port] = fwd
                other.in_flit_channels[link.dest_port] = fwd
                other.credit_up_channels[link.dest_port] = cr_bwd
                router.credit_return_channels[port] = cr_bwd
                # other:dest_port --bwd--> r:port
                other.out_flit_channels[link.dest_port] = bwd
                router.in_flit_channels[port] = bwd
                router.credit_up_channels[port] = cr_fwd
                other.credit_return_channels[link.dest_port] = cr_fwd
                router.downstream_router[port] = link.dest_router
                other.downstream_router[link.dest_port] = r

        for t in range(topo.num_terminals):
            r, port = topo.terminal_attachment(t)
            router = self.routers[r]
            router.is_terminal_port[port] = True
            inj = PipelinedChannel(cfg.injection_channel_delay)
            ej = PipelinedChannel(cfg.injection_channel_delay + ST_LATENCY)
            inj_credit = PipelinedChannel(cfg.credit_delay)
            ej_credit = PipelinedChannel(cfg.credit_delay)
            source = Source(t, cfg, self.routing, inj, inj_credit, self.stats,
                            trace=self.trace)
            sink = Sink(t, ej, ej_credit, self.stats, trace=self.trace)
            router.in_flit_channels[port] = inj
            router.credit_up_channels[port] = inj_credit
            router.out_flit_channels[port] = ej
            router.credit_return_channels[port] = ej_credit
            router.downstream_router[port] = None
            self.sources.append(source)
            self.sinks.append(sink)

    def _congestion(self, router, port):
        return self.routers[router].occupancy(port)

    # ------------------------------------------------------------------

    @property
    def num_terminals(self):
        return self.topology.num_terminals

    def inject(self, packet):
        """Queue a packet at its source terminal."""
        self.stats.record_created(packet, self.cycle)
        self.sources[packet.src].enqueue(packet)

    def attach_profiler(self, profiler):
        """Enable per-phase pipeline profiling on every router."""
        self.profiler = profiler
        for router in self.routers:
            router.profiler = profiler
        return profiler

    def attach_sampler(self, sampler):
        """Enable periodic network-state snapshots (obs.sampler)."""
        self.sampler = sampler
        return sampler.bind(self)

    def step(self):
        """Advance the network by one cycle."""
        now = self.cycle
        for router in self.routers:
            router.receive(now)
        for sink in self.sinks:
            sink.step(now)
        for source in self.sources:
            source.receive_credits(now)
            source.step(now)
        for router in self.routers:
            router.step(now)
        if self.sampler is not None:
            self.sampler.maybe_sample(now)
        self.cycle += 1
        if self.profiler is not None:
            self.profiler.end_cycle()

    def run(self, cycles):
        for _ in range(cycles):
            self.step()

    # --- introspection ----------------------------------------------------

    def in_flight_flits(self):
        """Flits buffered in routers or on channels (not source queues)."""
        total = sum(r.total_buffered_flits() for r in self.routers)
        for router in self.routers:
            for chan in router.out_flit_channels:
                if chan is not None:
                    total += chan.in_flight
        return total

    def backlog(self):
        """Packets waiting at sources (offered but not injected)."""
        return sum(s.backlog for s in self.sources)

    def chain_stats(self):
        """Aggregated chaining counters across all routers."""
        from repro.core.chaining import ChainStats

        total = ChainStats()
        for router in self.routers:
            total = total.merged(router.chain_stats)
        return total

    def publish_metrics(self, registry):
        """Publish collector, chaining, and router-level metrics."""
        self.stats.publish_metrics(registry)
        self.chain_stats().publish_metrics(registry)
        registry.counter(
            "cycles", help="Simulated cycles executed"
        ).inc(self.cycle)
        registry.counter(
            "router_flits_sent",
            help="Flits sent across all router output ports",
        ).inc(sum(sum(r.port_flits) for r in self.routers))
        registry.counter(
            "wasted_speculations",
            help="SA grants wasted on failed VC speculation",
        ).inc(sum(r.wasted_speculations for r in self.routers))
        registry.gauge(
            "in_flight_flits", help="Flits buffered in routers or on channels"
        ).set(self.in_flight_flits())
        return registry
