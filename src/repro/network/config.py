"""Network configuration."""

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Optional

from repro.core.chaining import ChainingScheme


@dataclass
class NetworkConfig:
    """Configuration mirroring the paper's methodology (Section 3).

    Defaults are the paper's default configuration: 8x8 mesh, DOR, 4 VCs
    with 8 statically-assigned buffer slots each, single-iteration iSLIP
    combined switch/VC allocator, incremental allocation, equal packet
    priorities, starvation control disabled, chaining disabled.
    """

    # --- topology / routing ---
    topology: str = "mesh"  # "mesh" | "fbfly" | "torus" | "cmesh"
    mesh_k: int = 8  # also the torus/cmesh radix
    cmesh_concentration: int = 4
    fbfly_rows: int = 4
    fbfly_cols: int = 4
    fbfly_concentration: int = 4
    routing: str = "dor"  # "dor" | "ugal"

    # --- router resources ---
    num_vcs: int = 4
    vc_buf_depth: int = 8
    num_classes: int = 1  # UGAL requires 2; VCs are split evenly

    # --- allocation ---
    allocator: str = "islip1"  # switch allocator kind
    pc_allocator: str = "islip1"  # PC allocator kind (paper: iSLIP-1)
    chaining: ChainingScheme = ChainingScheme.DISABLED
    #: Enable the two-class speculative PC requests of Section 2.4.
    pc_priorities: bool = True
    #: "combined" (Kumar et al., the paper's router: output VCs are
    #: assigned to switch-allocation winners), "split" (a separate VC
    #: allocator runs a pipeline stage ahead of SA, as in Mullins et
    #: al.; holds output VCs earlier and leaves fewer free for chaining)
    #: or "speculative" (split VA where unallocated heads also bid SA
    #: speculatively in the same cycle; the SA grant is only used if the
    #: VA grant arrives too — Peh & Dally / Mullins, cited in §4.9).
    vc_allocation: str = "combined"

    #: Pseudo-circuit semantics (Ahn & Kim, MICRO 2010; the paper's
    #: Related Work): release a held connection as soon as a packet from
    #: another input VC requests the connected output — prioritizing
    #: latency, "whereas packet chaining maintains the connection in
    #: order to improve allocation efficiency under load". Combine with
    #: chaining=SAME_VC to model pseudo-circuits.
    pseudo_circuit_release: bool = False

    # --- starvation control (Section 2.5) ---
    starvation_threshold: Optional[int] = None  # THRESHOLD mode if set
    age_period: Optional[int] = None  # AGE mode if set (and threshold unset)

    # --- timing ---
    credit_delay: int = 2  # "two cycles to generate and transmit credits"
    injection_channel_delay: int = 1

    # --- simulation backend ---
    #: "reference" is the per-object Python core; "fast" selects the
    #: structure-of-arrays core in :mod:`repro.fastcore`, which is
    #: bit-identical to the reference (results, metrics, traces,
    #: checkpoints) but substantially faster. Unsupported feature
    #: combinations (fault injection, reliable transport) fall back to
    #: the reference core with a warning. The backend is an execution
    #: detail, not an experiment parameter: it is excluded from
    #: checkpoint config hashes so snapshots stay portable.
    backend: str = "reference"

    # --- misc ---
    seed: int = 1

    def __post_init__(self):
        self.chaining = ChainingScheme.parse(self.chaining)
        if self.backend not in ("reference", "fast"):
            raise ValueError(f"unknown backend {self.backend!r}")
        if self.topology not in ("mesh", "fbfly", "torus", "cmesh"):
            raise ValueError(f"unknown topology {self.topology!r}")
        if self.routing not in ("dor", "ugal"):
            raise ValueError(f"unknown routing {self.routing!r}")
        if self.topology == "fbfly" and self.routing == "ugal":
            self.num_classes = 2
        if self.topology == "torus":
            # Dateline deadlock avoidance needs two VC classes.
            self.num_classes = 2
        if self.num_vcs % self.num_classes != 0:
            raise ValueError(
                f"num_vcs={self.num_vcs} not divisible by num_classes={self.num_classes}"
            )
        if self.num_vcs < 1 or self.vc_buf_depth < 1:
            raise ValueError("num_vcs and vc_buf_depth must be >= 1")
        if self.starvation_threshold is not None and self.starvation_threshold < 1:
            raise ValueError("starvation_threshold must be >= 1")
        if self.vc_allocation not in ("combined", "split", "speculative"):
            raise ValueError(f"unknown vc_allocation {self.vc_allocation!r}")

    def to_dict(self):
        """JSON-serializable dict (enums become their value strings)."""
        data = dataclasses.asdict(self)
        data["chaining"] = self.chaining.value
        return data

    @classmethod
    def from_dict(cls, data):
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown config keys: {sorted(unknown)}")
        return cls(**data)

    def save(self, path):
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path):
        with open(path) as fh:
            return cls.from_dict(json.load(fh))

    @property
    def vcs_per_class(self):
        return self.num_vcs // self.num_classes

    def vc_class_range(self, vc_class):
        """The VC indices belonging to a traffic class."""
        per = self.vcs_per_class
        return range(vc_class * per, (vc_class + 1) * per)

    def class_of_vc(self, vc):
        return vc // self.vcs_per_class


def mesh_config(**overrides):
    """The paper's default mesh configuration (Section 3)."""
    return NetworkConfig(topology="mesh", routing="dor", **overrides)


def fbfly_config(**overrides):
    """The paper's default FBFly configuration (Section 3)."""
    return NetworkConfig(topology="fbfly", routing="ugal", **overrides)


def torus_config(**overrides):
    """8x8 torus with dateline DOR (extension study)."""
    return NetworkConfig(topology="torus", routing="dor", **overrides)


def cmesh_config(**overrides):
    """4x4 concentrated mesh, 4 terminals/router (extension study)."""
    overrides.setdefault("mesh_k", 4)
    return NetworkConfig(topology="cmesh", routing="dor", **overrides)
