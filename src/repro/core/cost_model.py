"""Analytic allocator cost model (Section 4.9).

The paper compares packet chaining's hardware overhead against
wavefront, iSLIP-2 and augmenting-paths allocators using the synthesis
data of Becker & Dally, "Allocator implementations for network-on-chip
routers" (SC 2009). We encode the published ratios relative to a
single-iteration separable (iSLIP-1) allocator and derive the
PC-relative numbers the paper reports:

- Mesh (radix 5): wavefront = 2.5x area, 3x power, +20% delay.
- FBFly (radix 10): wavefront = 2.7x area, 6x power, +36% delay.
- Packet chaining (ANY_INPUT) adds a second separable allocator in
  parallel: 2x area, 2x worst-case power, ~0 extra delay (conflict
  detection overlaps output-VC assignment).
- SAME_INPUT chaining needs only one arbiter + comparator per input:
  a small fraction of a full allocator.
- iSLIP-2 = same area as iSLIP-1, 2x delay and worst-case power.
- Augmenting paths: more complex than wavefront (modeled conservatively
  as 1.5x wavefront area/power, 2x separable delay; Hoare et al. show
  it is infeasible in a cycle either way).

Becker & Dally's wavefront numbers scale with radix; between the two
published radices we interpolate linearly and extrapolate (clamped)
outside, which is sufficient for the mesh/FBFly design points the paper
discusses.
"""

from dataclasses import dataclass

# Published design points: radix -> (area_x, power_x, delay_x) relative
# to a single-iteration separable allocator.
_WAVEFRONT_POINTS = {5: (2.5, 3.0, 1.20), 10: (2.7, 6.0, 1.36)}


def _interp_wavefront(radix):
    (r_lo, (a_lo, p_lo, d_lo)) = (5, _WAVEFRONT_POINTS[5])
    (r_hi, (a_hi, p_hi, d_hi)) = (10, _WAVEFRONT_POINTS[10])
    t = (radix - r_lo) / (r_hi - r_lo)
    t = max(0.0, min(1.5, t))  # clamp extrapolation
    return (
        a_lo + t * (a_hi - a_lo),
        p_lo + t * (p_hi - p_lo),
        d_lo + t * (d_hi - d_lo),
    )


@dataclass(frozen=True)
class CostReport:
    """Area/power/delay of one allocator, relative to iSLIP-1 = 1.0."""

    name: str
    radix: int
    area: float
    power: float
    delay: float

    def relative_to(self, other):
        """Ratios of self vs other (how much more expensive self is)."""
        return CostReport(
            name=f"{self.name} vs {other.name}",
            radix=self.radix,
            area=self.area / other.area,
            power=self.power / other.power,
            delay=self.delay / other.delay,
        )


class AllocatorCostModel:
    """Produces :class:`CostReport` for each allocator at a given radix."""

    KINDS = ("islip1", "islip2", "wavefront", "augmenting",
             "pc_any_input", "pc_same_input")

    def __init__(self, radix):
        if radix < 2:
            raise ValueError(f"radix must be >= 2, got {radix}")
        self.radix = radix

    def report(self, kind):
        kind = kind.lower()
        if kind == "islip1":
            return CostReport("islip1", self.radix, 1.0, 1.0, 1.0)
        if kind == "islip2":
            # Two iterations in one cycle: same logic, twice traversed.
            return CostReport("islip2", self.radix, 1.0, 2.0, 2.0)
        if kind == "wavefront":
            area, power, delay = _interp_wavefront(self.radix)
            return CostReport("wavefront", self.radix, area, power, delay)
        if kind == "augmenting":
            area, power, delay = _interp_wavefront(self.radix)
            return CostReport("augmenting", self.radix, 1.5 * area, 1.5 * power, 2.0)
        if kind == "pc_any_input":
            # A second separable allocator in parallel; conflict
            # detection overlaps output-VC assignment (Section 4.9).
            return CostReport("pc_any_input", self.radix, 2.0, 2.0, 1.0)
        if kind == "pc_same_input":
            # One arbiter + comparators per input instead of a full
            # allocator: a small fraction of the separable allocator.
            return CostReport("pc_same_input", self.radix, 1.2, 1.2, 1.0)
        raise ValueError(f"unknown allocator kind: {kind!r}")

    def wavefront_vs_packet_chaining(self):
        """The paper's headline comparison (abstract / Section 4.9)."""
        return self.report("wavefront").relative_to(self.report("pc_any_input"))

    def table(self):
        """All reports, for the Section 4.9 bench."""
        return [self.report(kind) for kind in self.KINDS]
