"""Starvation control for packet chaining (Section 2.5).

Packet chaining can hold a switch connection indefinitely. The paper
proposes two mechanisms:

1. **Threshold release** (the one evaluated in Section 4.7): release a
   connection once it has been held ``threshold`` cycles, and make
   connections that will reach the threshold next cycle ineligible for
   chaining, returning long-held ports to the switch allocator pool.
2. **Age priorities**: increase a waiting packet's allocation priority
   after it has waited ``age_period`` cycles; higher-priority requests
   force established connections to be released.
"""

import enum


class StarvationMode(enum.Enum):
    DISABLED = "disabled"
    THRESHOLD = "threshold"
    AGE = "age"


class StarvationControl:
    """Policy object consulted by the router each cycle.

    With ``THRESHOLD`` mode, ``threshold`` is the maximum number of
    cycles a connection may be held (the paper uses 8 for applications,
    and 4/8 in the synthetic studies). With ``AGE`` mode, a packet's
    priority increases by one every ``age_period`` cycles of waiting.
    """

    def __init__(self, mode=StarvationMode.DISABLED, threshold=None, age_period=16):
        if isinstance(mode, str):
            mode = StarvationMode(mode.lower())
        self.mode = mode
        if mode is StarvationMode.THRESHOLD:
            if threshold is None or threshold < 1:
                raise ValueError("threshold mode requires threshold >= 1")
        if age_period < 1:
            raise ValueError("age_period must be >= 1")
        self.threshold = threshold
        self.age_period = age_period

    @classmethod
    def disabled(cls):
        return cls(StarvationMode.DISABLED)

    @classmethod
    def from_config(cls, threshold=None, age_period=None):
        """Build from NetworkConfig fields (threshold wins if both set)."""
        if threshold is not None:
            return cls(StarvationMode.THRESHOLD, threshold=threshold)
        if age_period is not None:
            return cls(StarvationMode.AGE, age_period=age_period)
        return cls.disabled()

    def must_release(self, connection_age):
        """True if a connection this old must be force-released now."""
        return (
            self.mode is StarvationMode.THRESHOLD
            and connection_age >= self.threshold
        )

    def chainable(self, connection_age, packet_flits=1):
        """May a packet of ``packet_flits`` chain onto this connection?

        "Connections that will reach the starvation threshold at the
        next cycle are not eligible for chaining" (Section 2.5). We
        apply the natural length-aware form: the chained packet must be
        able to finish before the threshold cuts the connection,
        otherwise the chain would guarantee the mid-packet release that
        Section 4.7 shows negates chaining gains (a threshold smaller
        than the packet length "releases connections before packets can
        be fully transferred").
        """
        if self.mode is not StarvationMode.THRESHOLD:
            return True
        return connection_age + packet_flits < self.threshold

    def packet_priority(self, base_priority, wait_cycles):
        """Age-escalated priority for a waiting packet (AGE mode)."""
        if self.mode is not StarvationMode.AGE:
            return base_priority
        return base_priority + wait_cycles // self.age_period
