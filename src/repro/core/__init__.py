"""The paper's primary contribution: packet chaining.

- :mod:`repro.core.chaining` — chaining schemes and the PC request
  builder / grant validator used by the router.
- :mod:`repro.core.starvation` — the two starvation-control mechanisms
  of Section 2.5.
- :mod:`repro.core.cost_model` — the analytic allocator area/power/delay
  model of Section 4.9.
"""

from repro.core.chaining import ChainingScheme, ChainStats, PCRequestBuilder
from repro.core.starvation import StarvationControl, StarvationMode
from repro.core.cost_model import AllocatorCostModel, CostReport

__all__ = [
    "ChainingScheme",
    "ChainStats",
    "PCRequestBuilder",
    "StarvationControl",
    "StarvationMode",
    "AllocatorCostModel",
    "CostReport",
]
