"""Shared helpers for component ``state_dict()/load_state()`` methods.

Checkpointing (repro.checkpoint) serializes simulator state to JSON.
``random.Random.getstate()`` returns a nested tuple that JSON cannot
round-trip, so every RNG-bearing component funnels through these two
converters: tuples become lists on the way out and are rebuilt on the
way in (``setstate`` requires the exact tuple shape).
"""


def rng_state_to_json(rng):
    """``random.Random`` state as a JSON-serializable list."""
    version, internal, gauss_next = rng.getstate()
    return [version, list(internal), gauss_next]


def rng_state_from_json(state):
    """Inverse of :func:`rng_state_to_json`."""
    version, internal, gauss_next = state
    return (version, tuple(internal), gauss_next)


def set_rng_state(rng, state):
    """Restore a ``random.Random`` from its JSON form."""
    rng.setstate(rng_state_from_json(state))
