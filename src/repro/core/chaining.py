"""Packet chaining: schemes, request construction, and statistics.

Packet chaining (Section 2.2) reuses the switch connection of a
departing tail flit for a waiting packet destined to the same output,
so the switch allocator never has to rebuild that match. The router
owns the cycle-by-cycle mechanics; this module owns the policy:

- which (input, VC) pairs may chain onto a given connection
  (:class:`ChainingScheme`, Section 2.3);
- the two PC priority classes (definite vs. speculative requests,
  Section 2.4);
- the counters behind Figure 11 (:class:`ChainStats`).
"""

import enum
from dataclasses import dataclass


class ChainingScheme(enum.Enum):
    """The three chaining variations of Section 2.3 (plus disabled)."""

    DISABLED = "disabled"
    #: Only the same input VC as the packet holding the connection.
    SAME_VC = "same_vc"
    #: Any eligible VC of the same input as the packet holding the connection.
    SAME_INPUT = "same_input"
    #: Eligible packets in any input and any VC (full PC allocator).
    ANY_INPUT = "any_input"

    @property
    def enabled(self):
        return self is not ChainingScheme.DISABLED

    @classmethod
    def parse(cls, value):
        """Accept a ChainingScheme, its value string, or None."""
        if value is None:
            return cls.DISABLED
        if isinstance(value, cls):
            return value
        return cls(str(value).lower())


#: PC request priority classes (Section 2.4): requests that may have to
#: be invalidated by same-cycle switch-allocator decisions bid in the
#: lower class so they cannot take resources from definite requests.
PC_PRIORITY_DEFINITE = 1
PC_PRIORITY_SPECULATIVE = 0


@dataclass
class ChainStats:
    """Counters for Figure 11 and Section 4.6.

    All counts are PC allocator grants that survived conflict
    detection, broken down by where the chained packet came from
    relative to the packet that held the connection.
    """

    same_input_same_vc: int = 0
    same_input_other_vc: int = 0
    other_input: int = 0
    #: PC grants dropped because the switch allocator granted the same
    #: input (or the speculated SA outcome did not happen).
    conflicts: int = 0
    #: PC grants dropped because the speculated event (tail winning SA,
    #: own-input connection releasing) did not occur.
    speculation_failures: int = 0
    cycles: int = 0

    def record_chain(self, same_input, same_vc):
        if same_input and same_vc:
            self.same_input_same_vc += 1
        elif same_input:
            self.same_input_other_vc += 1
        else:
            self.other_input += 1

    @property
    def total_chains(self):
        return self.same_input_same_vc + self.same_input_other_vc + self.other_input

    def merged(self, other):
        """Return a new ChainStats with summed counters."""
        return ChainStats(
            same_input_same_vc=self.same_input_same_vc + other.same_input_same_vc,
            same_input_other_vc=self.same_input_other_vc + other.same_input_other_vc,
            other_input=self.other_input + other.other_input,
            conflicts=self.conflicts + other.conflicts,
            speculation_failures=self.speculation_failures + other.speculation_failures,
            cycles=max(self.cycles, other.cycles),
        )

    def publish_metrics(self, registry):
        """Register the Figure 11 counters into a MetricsRegistry."""
        counters = (
            ("chains_total", self.total_chains,
             "PC grants that survived conflict detection"),
            ("chains_same_vc", self.same_input_same_vc,
             "Chains from the holder's own input VC"),
            ("chains_same_input", self.same_input_other_vc,
             "Chains from another VC of the holder's input"),
            ("chains_other_input", self.other_input,
             "Chains from a different input port"),
            ("chain_conflicts", self.conflicts,
             "PC grants dropped on SA conflict"),
            ("chain_speculation_failures", self.speculation_failures,
             "Speculative PC grants whose event did not occur"),
            ("chain_cycles", self.cycles,
             "Cycles simulated with chaining enabled"),
        )
        for name, value, help_text in counters:
            registry.counter(name, help=help_text).inc(value)
        return registry


class PCCandidate:
    """A waiting packet that may chain onto a releasing connection.

    ``speculative`` marks the lower priority class (Section 2.4): the
    chain is only valid if this cycle's switch allocation produces the
    event named in ``requires``:

    - ``("sa_tail", output)`` — a connectionless tail flit must win SA
      for ``output`` this cycle, forming the connection to chain onto;
    - ``("own_release", input)`` — the candidate's own input port is
      part of another connection that must release this cycle.

    ``flit`` is the candidate's head (or parked body) flit; validation
    checks the flit itself rather than a buffer position because the
    departing tail ahead of it shifts positions within the cycle.
    """

    __slots__ = ("input_port", "vc", "output_port", "priority", "flit",
                 "speculative", "requires")

    def __init__(self, input_port, vc, output_port, priority, flit,
                 speculative=False, requires=()):
        self.input_port = input_port
        self.vc = vc
        self.output_port = output_port
        self.priority = priority
        self.flit = flit
        self.speculative = speculative
        self.requires = requires


def scheme_admits(scheme, cand_input, cand_vc, holder_input, holder_vc):
    """Does ``scheme`` allow (cand_input, cand_vc) to chain onto a
    connection held (or being formed) by (holder_input, holder_vc)?"""
    if scheme is ChainingScheme.DISABLED:
        return False
    if scheme is ChainingScheme.SAME_VC:
        return cand_input == holder_input and cand_vc == holder_vc
    if scheme is ChainingScheme.SAME_INPUT:
        return cand_input == holder_input
    return True  # ANY_INPUT


class PCRequestBuilder:
    """Builds the OR-reduced PC request matrix for one router cycle.

    The router feeds it candidates; it applies the scheme filter and
    OR-reduces to (input, output) -> priority for the PC allocator,
    remembering per-pair candidate lists so a port-level grant can be
    mapped back to a VC (highest priority first, then round-robin by
    the router's per-input chain arbiters).
    """

    def __init__(self, scheme):
        self.scheme = ChainingScheme.parse(scheme)
        self.candidates = []

    def admit(self, candidate, holder_input, holder_vc):
        """Apply the scheme filter for a candidate against the holder.

        ``holder_input``/``holder_vc`` identify the packet that holds
        (or is forming) the connection being chained onto.
        """
        return scheme_admits(
            self.scheme, candidate.input_port, candidate.vc, holder_input, holder_vc
        )

    def add(self, candidate):
        self.candidates.append(candidate)

    #: Packet/age priorities are honored *within* each PC class
    #: (Section 2.4); the class separation must dominate them.
    CLASS_STRIDE = 1 << 20

    def request_matrix(self):
        """OR-reduce candidates to {(input, output): priority}.

        Priority = PC class (definite vs speculative) with the packet's
        own priority (e.g. age-escalated) as a tie-breaker inside the
        class.
        """
        matrix = {}
        for cand in self.candidates:
            pair = (cand.input_port, cand.output_port)
            pc_class = (
                PC_PRIORITY_SPECULATIVE if cand.speculative else PC_PRIORITY_DEFINITE
            )
            prio = pc_class * self.CLASS_STRIDE + min(
                max(cand.priority, 0), self.CLASS_STRIDE - 1
            )
            existing = matrix.get(pair)
            if existing is None or prio > existing:
                matrix[pair] = prio
        return matrix

    def candidates_for(self, input_port, output_port):
        """Candidates behind a port-level grant, definite class first."""
        matches = [
            c
            for c in self.candidates
            if c.input_port == input_port and c.output_port == output_port
        ]
        matches.sort(key=lambda c: (c.speculative, -c.priority))
        return matches
