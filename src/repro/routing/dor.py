"""Deterministic dimension-order (XY) routing for the 2D mesh.

"For the mesh we use deterministic dimension-order routing (DOR)
because it is a simple and popular choice." (Section 3). X is resolved
before Y; XY routing is deadlock-free in a mesh without VC classes.
"""

from repro.routing.base import RoutingFunction
from repro.topology.mesh import (
    PORT_TERMINAL,
    PORT_XMINUS,
    PORT_XPLUS,
    PORT_YMINUS,
    PORT_YPLUS,
)


class DORMesh(RoutingFunction):
    """XY routing for any mesh-like topology (Mesh2D, CMesh2D)."""

    def prepare(self, packet):
        packet.route_state = None  # DOR is stateless

    def next_hop(self, router, packet):
        dest_router, dest_port = self.topology.terminal_attachment(packet.dest)
        dx, dy = self.topology.coords(dest_router)
        x, y = self.topology.coords(router)
        if x < dx:
            return PORT_XPLUS, 0
        if x > dx:
            return PORT_XMINUS, 0
        if y < dy:
            return PORT_YPLUS, 0
        if y > dy:
            return PORT_YMINUS, 0
        return dest_port, 0
