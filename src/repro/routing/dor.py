"""Deterministic dimension-order (XY) routing for the 2D mesh.

"For the mesh we use deterministic dimension-order routing (DOR)
because it is a simple and popular choice." (Section 3). X is resolved
before Y; XY routing is deadlock-free in a mesh without VC classes.

When a fault set is attached (see
:meth:`~repro.routing.base.RoutingFunction.attach_faults`), a hop whose
XY-preferred port is down is detoured:

- A dead **X** hop is stateless: step into an adjacent row (productive
  Y direction first) and DOR keeps resolving X there, sliding past the
  dead link.
- A dead **Y** hop needs one hop of memory, because plain XY would
  immediately undo any X side-step. The detour stores a ``y_detour``
  token in ``packet.route_state``; the next router honors it by making
  the Y move in the adjacent column before DOR pulls the packet back.

Reverse (180°) ports are never detour candidates — they ping-pong. If
no forward candidate is alive the preferred (dead) port is returned and
the router's fault pre-pass kills the packet as unroutable. Detours
break strict XY ordering, so deadlock freedom is no longer guaranteed
under faults — that is precisely the regime the hang watchdog exists
for.
"""

from repro.routing.base import RoutingFunction
from repro.topology.mesh import (
    PORT_TERMINAL,
    PORT_XMINUS,
    PORT_XPLUS,
    PORT_YMINUS,
    PORT_YPLUS,
)


class DORMesh(RoutingFunction):
    """XY routing for any mesh-like topology (Mesh2D, CMesh2D)."""

    def prepare(self, packet):
        packet.route_state = None  # DOR is stateless (until a detour)

    def next_hop(self, router, packet):
        topo = self.topology
        dest_router, dest_port = topo.terminal_attachment(packet.dest)
        state = packet.route_state
        if state is not None:
            # A pending Y detour: make the deferred Y move here, in the
            # column next to the dead link, before DOR resolves X back.
            packet.route_state = None
            ydir = state[1]
            if topo.link(router, ydir) is not None and not self.port_dead(
                router, ydir
            ):
                return ydir, 0
            # This column can't make the Y move either; fall through and
            # recompute from scratch at this router.
        preferred = self._xy_port(router, dest_router, dest_port)
        if self._dead_ports is None or not self.port_dead(router, preferred):
            return preferred, 0
        chosen = self._detour(router, preferred, dest_router, packet)
        if chosen is None:
            # Nothing alive to divert through (or the dead port is the
            # ejection port itself): return the preferred port and let
            # the router's fault pre-pass dispose of the packet.
            return preferred, 0
        if self._on_detour is not None:
            self._on_detour(router, preferred, chosen, packet)
        return chosen, 0

    def _xy_port(self, router, dest_router, dest_port):
        dx, dy = self.topology.coords(dest_router)
        x, y = self.topology.coords(router)
        if x < dx:
            return PORT_XPLUS
        if x > dx:
            return PORT_XMINUS
        if y < dy:
            return PORT_YPLUS
        if y > dy:
            return PORT_YMINUS
        return dest_port

    def _alive(self, router, port):
        return (
            self.topology.link(router, port) is not None
            and not self.port_dead(router, port)
        )

    def _detour(self, router, preferred, dest_router, packet):
        """Best live alternative to a dead preferred port, or None."""
        if preferred == PORT_TERMINAL:
            return None  # ejection port dead: no detour can deliver
        topo = self.topology
        dx, dy = topo.coords(dest_router)
        x, y = topo.coords(router)
        if preferred in (PORT_XPLUS, PORT_XMINUS):
            # Side-step into an adjacent row; X resolution continues
            # there statelessly. Productive Y direction first.
            if y < dy:
                order = (PORT_YPLUS, PORT_YMINUS)
            else:
                order = (PORT_YMINUS, PORT_YPLUS)
            for port in order:
                if self._alive(router, port):
                    return port
            return None
        # Dead Y hop (x == dx here: XY already resolved X). Side-step
        # into an adjacent column and leave a token so the next router
        # makes the Y move before DOR pulls the packet back.
        for port in (PORT_XPLUS, PORT_XMINUS):
            if self._alive(router, port):
                packet.route_state = ("y_detour", preferred)
                return port
        return None
