"""Routing function interface.

Routing is performed look-ahead style (Galles' SGI Spider scheme,
Section 2.4 of the paper): the output port a flit uses at router B is
computed while the flit is still at router A (or at injection, for the
first hop), so arriving head flits immediately carry their route.

``prepare`` runs once per packet at injection and may consult local
congestion (UGAL's adaptive decision). ``next_hop`` is called once per
router visit and returns the output port and the VC class the packet
must use there; it may update per-packet ``route_state``.
"""

from abc import ABC, abstractmethod


class RoutingFunction(ABC):
    def __init__(self, topology):
        self.topology = topology
        self._congestion = None
        self._dead_ports = None
        self._on_detour = None

    def attach_congestion(self, fn):
        """Install a ``fn(router, port) -> occupancy`` congestion probe."""
        self._congestion = fn

    def congestion(self, router, port):
        """Queue occupancy estimate for an output port (0 if no probe)."""
        if self._congestion is None:
            return 0
        return self._congestion(router, port)

    def attach_faults(self, dead_ports, on_detour=None):
        """Make the routing function fault-aware.

        ``dead_ports`` is a live set of ``(router, output_port)`` pairs
        maintained by the :class:`~repro.faults.controller.FaultController`;
        subclasses that support detouring consult it in ``next_hop``.
        ``on_detour(router, preferred, chosen, packet)`` is invoked each
        time the preferred port is avoided (for counting/tracing).
        """
        self._dead_ports = dead_ports
        self._on_detour = on_detour

    def port_dead(self, router, port):
        """Whether fault injection has taken ``(router, port)`` down."""
        dead = self._dead_ports
        return dead is not None and (router, port) in dead

    @abstractmethod
    def prepare(self, packet):
        """Initialize per-packet routing state at injection time."""

    @abstractmethod
    def next_hop(self, router, packet):
        """Return (output_port, vc_class) for the packet at ``router``."""
