"""Routing functions: dimension-order (mesh/cmesh/torus) and UGAL (FBFly)."""

from repro.routing.base import RoutingFunction
from repro.routing.dor import DORMesh
from repro.routing.torus_dor import DORTorus
from repro.routing.ugal import UGALFbfly

__all__ = ["RoutingFunction", "DORMesh", "DORTorus", "UGALFbfly", "build_routing"]


def build_routing(config, topology, rng):
    """Construct the routing function described by a NetworkConfig."""
    if config.routing == "dor":
        if config.topology == "torus":
            return DORTorus(topology)
        return DORMesh(topology)
    if config.routing == "ugal":
        return UGALFbfly(topology, rng)
    raise ValueError(f"unknown routing {config.routing!r}")
