"""Dimension-order routing on the 2D torus with dateline VC classes.

Each ring is traversed in its shortest direction (ties broken toward
+). Wraparound links close dependency cycles inside each ring, so
deadlock freedom uses the classic dateline scheme (Dally & Seitz):
packets start a dimension in VC class 0 and switch to class 1 after
crossing that dimension's dateline (the wrap link between coordinate
k-1 and 0, in either direction). Entering the next dimension resets to
class 0. Since X fully precedes Y, the class-0/class-1 split within
each ring is the only cycle-breaking needed.
"""

from repro.routing.base import RoutingFunction
from repro.topology.mesh import (
    PORT_TERMINAL,
    PORT_XMINUS,
    PORT_XPLUS,
    PORT_YMINUS,
    PORT_YPLUS,
)


class TorusRouteState:
    __slots__ = ("crossed_dateline", "in_y")

    def __init__(self):
        self.crossed_dateline = False
        self.in_y = False


class DORTorus(RoutingFunction):
    def prepare(self, packet):
        packet.route_state = TorusRouteState()
        packet.vc_class = 0

    def _direction(self, cur, dst):
        """(port_sign, crosses_dateline) for the shortest ring direction."""
        k = self.topology.k
        fwd = (dst - cur) % k
        bwd = (cur - dst) % k
        if fwd <= bwd:
            # + direction: crosses the wrap between k-1 and 0 iff we
            # pass coordinate k-1 -> 0, i.e. cur + fwd >= k.
            return +1, cur + fwd >= k
        return -1, cur - bwd < 0

    def next_hop(self, router, packet):
        state = packet.route_state
        x, y = self.topology.coords(router)
        dx, dy = self.topology.coords(packet.dest)
        if x != dx:
            sign, _ = self._direction(x, dx)
            port = PORT_XPLUS if sign > 0 else PORT_XMINUS
            crossing = (sign > 0 and x == self.topology.k - 1) or (
                sign < 0 and x == 0
            )
            if crossing:
                state.crossed_dateline = True
            vc_class = 1 if state.crossed_dateline else 0
            # Leaving the X ring happens implicitly when x reaches dx;
            # the Y steps below reset the class.
            return port, vc_class
        if y != dy:
            sign, _ = self._direction(y, dy)
            port = PORT_YPLUS if sign > 0 else PORT_YMINUS
            crossing = (sign > 0 and y == self.topology.k - 1) or (
                sign < 0 and y == 0
            )
            if not state.in_y:
                # First Y hop: new dimension, class resets.
                state.crossed_dateline = False
                state.in_y = True
            if crossing:
                state.crossed_dateline = True
            return port, 1 if state.crossed_dateline else 0
        return PORT_TERMINAL, 1 if state.crossed_dateline else 0
