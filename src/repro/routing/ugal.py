"""UGAL routing for the flattened butterfly (Singh, 2005).

Universal Globally-Adaptive Load-balancing chooses per packet, at the
source router, between the minimal path and a Valiant-style nonminimal
path through a random intermediate router, based on locally observable
congestion: route minimally iff

    q_min * H_min  <=  q_nonmin * H_nonmin + threshold

where q is the occupancy of the candidate first-hop output queue and H
the path hop count. "UGAL routes packets minimally using DOR with one
hop per dimension to their intermediate and final destinations"
(Section 4.6): inside each phase we resolve X then Y, and every
dimension hop is a single direct FBFly link.

Two traffic classes keep the two phases deadlock-free; the network's
VCs "are divided among the two traffic classes required by UGAL"
(Section 3). Phase 0 (toward the intermediate) uses class 0, phase 1
(toward the destination) uses class 1. Minimal packets start in
phase 1.
"""

from repro.routing.base import RoutingFunction


class UGALState:
    """Per-packet UGAL state: which phase we're in and via where."""

    __slots__ = ("phase", "intermediate", "minimal")

    def __init__(self, minimal, intermediate):
        self.minimal = minimal
        self.intermediate = intermediate
        self.phase = 1 if minimal else 0


class UGALFbfly(RoutingFunction):
    def __init__(self, topology, rng, threshold=1):
        super().__init__(topology)
        self.rng = rng
        self.threshold = threshold

    # --- path geometry -------------------------------------------------

    def _hops(self, src_router, dst_router):
        """Router-to-router hop count (one hop per differing dimension)."""
        sx, sy = self.topology.coords(src_router)
        dx, dy = self.topology.coords(dst_router)
        return int(sx != dx) + int(sy != dy)

    def _first_port(self, router, target_router):
        """First-hop output port from router toward target (X then Y)."""
        x, y = self.topology.coords(router)
        tx, ty = self.topology.coords(target_router)
        if x != tx:
            return self.topology.row_port(router, tx)
        if y != ty:
            return self.topology.col_port(router, ty)
        return None

    # --- RoutingFunction API -------------------------------------------

    def prepare(self, packet):
        src_router, _ = self.topology.terminal_attachment(packet.src)
        dest_router, _ = self.topology.terminal_attachment(packet.dest)
        intermediate = self.rng.randrange(self.topology.num_routers)

        if src_router == dest_router or intermediate in (src_router, dest_router):
            packet.route_state = UGALState(True, intermediate)
        else:
            h_min = self._hops(src_router, dest_router)
            h_nonmin = self._hops(src_router, intermediate) + self._hops(
                intermediate, dest_router
            )
            q_min = self._port_congestion(src_router, dest_router)
            q_nonmin = self._port_congestion(src_router, intermediate)
            minimal = q_min * h_min <= q_nonmin * h_nonmin + self.threshold
            packet.route_state = UGALState(minimal, intermediate)
        packet.vc_class = packet.route_state.phase

    def _port_congestion(self, router, target_router):
        port = self._first_port(router, target_router)
        if port is None:
            return 0
        return self.congestion(router, port)

    def next_hop(self, router, packet):
        state = packet.route_state
        dest_router, dest_port = self.topology.terminal_attachment(packet.dest)
        if state.phase == 0 and router == state.intermediate:
            state.phase = 1
        if state.phase == 0:
            port = self._first_port(router, state.intermediate)
            if port is None:  # already at intermediate (handled above)
                raise AssertionError("phase-0 packet at intermediate")
            return port, 0
        if router == dest_router:
            return dest_port, 1
        return self._first_port(router, dest_router), 1
