"""Simulation statistics: latency, throughput, blocking, chaining."""

from repro.stats.collector import StatsCollector
from repro.stats.summary import LatencySummary, SimResult, summarize
from repro.stats.timeseries import TimeSeries, WindowSample, attach

__all__ = [
    "StatsCollector",
    "SimResult",
    "LatencySummary",
    "summarize",
    "TimeSeries",
    "WindowSample",
    "attach",
]
