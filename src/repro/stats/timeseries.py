"""Windowed time-series sampling of network activity.

Records per-window accepted throughput and mean latency while a
simulation runs — the instrument behind stability studies like
Figure 5 (is throughput flat or collapsing past saturation?) and for
visualizing bursty workloads. Attach to a network's stats collector via
its listener API (``collector.add_listener(series)``; :func:`attach` is
the one-line convenience form), or drive :meth:`on_flit` /
:meth:`on_packet` directly.
"""

from dataclasses import dataclass
from typing import List


@dataclass
class WindowSample:
    start: int
    flits: int
    packets: int
    latency_sum: float

    @property
    def mean_latency(self):
        return self.latency_sum / self.packets if self.packets else 0.0

    def throughput(self, num_terminals, window):
        return self.flits / window / num_terminals


class TimeSeries:
    """Fixed-window accumulation of ejection events."""

    def __init__(self, window: int, num_terminals: int):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.num_terminals = num_terminals
        self.samples: List[WindowSample] = []

    def _sample_for(self, cycle):
        start = (cycle // self.window) * self.window
        if not self.samples or self.samples[-1].start != start:
            # Fill gaps with empty windows so the series is uniform.
            nxt = self.samples[-1].start + self.window if self.samples else start
            while nxt < start:
                self.samples.append(WindowSample(nxt, 0, 0, 0.0))
                nxt += self.window
            self.samples.append(WindowSample(start, 0, 0, 0.0))
        return self.samples[-1]

    def on_flit(self, cycle):
        self._sample_for(cycle).flits += 1

    def on_packet(self, cycle, latency):
        s = self._sample_for(cycle)
        s.packets += 1
        s.latency_sum += latency

    # --- StatsCollector listener protocol --------------------------------

    def on_flit_ejected(self, flit, cycle):
        self.on_flit(cycle)

    def on_packet_ejected(self, packet, cycle):
        if packet.time_created is not None:
            self.on_packet(cycle, cycle - packet.time_created)

    def throughput_series(self):
        return [
            s.throughput(self.num_terminals, self.window) for s in self.samples
        ]

    def latency_series(self):
        return [s.mean_latency for s in self.samples]

    def stability_ratio(self):
        """Final-window throughput over peak-window throughput.

        ~1.0 for a stable network; well below 1.0 when throughput
        collapses after saturation onset (tree saturation).
        """
        series = self.throughput_series()
        if not series:
            return 1.0
        peak = max(series)
        return series[-1] / peak if peak else 1.0


def attach(collector, window):
    """Register a new TimeSeries on a StatsCollector's listener hooks.

    Returns the TimeSeries; the collector keeps working as before, and
    any number of instruments can attach to the same collector (they
    compose through ``StatsCollector.add_listener`` instead of wrapping
    each other's methods).
    """
    return collector.add_listener(TimeSeries(window, collector.num_terminals))
