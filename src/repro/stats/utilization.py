"""Channel/port utilization reports and text heatmaps.

Routers count flits sent per output port; these helpers turn the
counters into link-utilization tables and ASCII heatmaps — the quickest
way to *see* tree saturation, hotspot trees, and the load imbalance
behind worst-case-throughput numbers.
"""

from dataclasses import dataclass
from typing import List

#: Shading ramp for heatmaps, lightest to darkest.
_RAMP = " .:-=+*#%@"


@dataclass(frozen=True)
class LinkLoad:
    router: int
    port: int
    flits: int
    utilization: float  # flits per cycle on this output
    is_terminal: bool


def link_loads(network, cycles) -> List[LinkLoad]:
    """Per-output-port utilization over ``cycles`` simulated cycles."""
    if cycles <= 0:
        raise ValueError("cycles must be positive")
    loads = []
    for router in network.routers:
        for port in range(router.radix):
            flits = router.port_flits[port]
            loads.append(
                LinkLoad(
                    router=router.router_id,
                    port=port,
                    flits=flits,
                    utilization=flits / cycles,
                    is_terminal=router.is_terminal_port[port],
                )
            )
    return loads


def hottest_links(network, cycles, top=10):
    """The ``top`` most-utilized output ports, busiest first."""
    loads = [l for l in link_loads(network, cycles) if l.flits > 0]
    loads.sort(key=lambda l: l.flits, reverse=True)
    return loads[:top]


def router_activity(network, cycles):
    """Total flits switched per router, normalized per cycle."""
    return [sum(r.port_flits) / cycles for r in network.routers]


def shade(value, peak):
    """Map a value in [0, peak] onto the ASCII shading ramp."""
    if peak <= 0:
        return _RAMP[0]
    idx = int(min(1.0, value / peak) * (len(_RAMP) - 1))
    return _RAMP[idx]


def mesh_heatmap(network, cycles):
    """ASCII heatmap of per-router switched flits for mesh-like grids.

    Requires a topology exposing integer ``k`` (Mesh2D, Torus2D,
    CMesh2D); raises TypeError otherwise.
    """
    topo = network.topology
    k = getattr(topo, "k", None)
    if k is None:
        raise TypeError("mesh_heatmap requires a k x k grid topology")
    activity = router_activity(network, cycles)
    peak = max(activity) if activity else 0.0
    rows = []
    for y in range(k):
        row = "".join(
            shade(activity[topo.router_at(x, y)], peak) for x in range(k)
        )
        rows.append(row)
    return "\n".join(rows)


def utilization_summary(network, cycles):
    """One-paragraph text summary of network load distribution."""
    loads = [l for l in link_loads(network, cycles) if not l.is_terminal]
    active = [l.utilization for l in loads if l.flits > 0]
    if not active:
        return "no link traffic recorded"
    mean = sum(active) / len(active)
    peak = max(active)
    return (
        f"{len(active)} active links; mean utilization {mean:.3f}"
        f" flits/cycle, peak {peak:.3f}"
        f" ({peak / mean:.1f}x mean)"
    )
