"""Measurement-window statistics collection.

BookSim-style methodology: statistics are collected only inside a
measurement window [start, end). Throughput is the flit ejection rate
per terminal during the window; the paper reports the *minimum over all
sources* ("Throughput results presented in this paper are the minimum
throughput among all sources for each simulation (worst-case
throughput)", Section 4.7). Latencies are recorded for packets ejected
during (or after) the window that were also created inside it.
"""


class StatsCollector:
    def __init__(self, num_terminals):
        self.num_terminals = num_terminals
        self.window = None  # (start, end) or None while not measuring
        # Ejection listener hooks (survive reset): instruments like
        # TimeSeries register callables instead of wrapping record_*
        # methods, so several observers compose without monkey-patching.
        self._flit_hooks = []
        self._packet_hooks = []
        self.reset()

    def reset(self):
        self.flits_ejected_per_source = [0] * self.num_terminals
        self.flits_injected_per_source = [0] * self.num_terminals
        self.packets_created_per_source = [0] * self.num_terminals
        self.packet_latencies = []
        self.network_latencies = []
        self.blocked_cycles = []
        self.max_packet_latency = 0
        self.packets_ejected = 0
        self.flits_ejected = 0

    def set_window(self, start, end):
        self.window = (start, end)

    # --- checkpointing ----------------------------------------------------

    def state_dict(self):
        """Serialize counters and the window.

        Listener hooks are deliberately excluded: they are observer
        wiring, not simulation state, and re-attach after a restore the
        same way they attach to a fresh collector.
        """
        return {
            "window": list(self.window) if self.window is not None else None,
            "flits_ejected_per_source": list(self.flits_ejected_per_source),
            "flits_injected_per_source": list(self.flits_injected_per_source),
            "packets_created_per_source": list(self.packets_created_per_source),
            "packet_latencies": list(self.packet_latencies),
            "network_latencies": list(self.network_latencies),
            "blocked_cycles": list(self.blocked_cycles),
            "max_packet_latency": self.max_packet_latency,
            "packets_ejected": self.packets_ejected,
            "flits_ejected": self.flits_ejected,
        }

    def load_state(self, state):
        self.window = tuple(state["window"]) if state["window"] is not None else None
        self.flits_ejected_per_source = list(state["flits_ejected_per_source"])
        self.flits_injected_per_source = list(state["flits_injected_per_source"])
        self.packets_created_per_source = list(state["packets_created_per_source"])
        self.packet_latencies = list(state["packet_latencies"])
        self.network_latencies = list(state["network_latencies"])
        self.blocked_cycles = list(state["blocked_cycles"])
        self.max_packet_latency = state["max_packet_latency"]
        self.packets_ejected = state["packets_ejected"]
        self.flits_ejected = state["flits_ejected"]

    # --- listener registration -------------------------------------------

    def add_listener(self, listener):
        """Register an ejection observer; returns ``listener``.

        ``listener`` may implement ``on_flit_ejected(flit, cycle)``
        and/or ``on_packet_ejected(packet, cycle)``; whichever methods
        exist are called on **every** ejection (window filtering is the
        listener's business, not the collector's). The hot path pays a
        truthiness check per ejection when no listeners are registered.
        """
        flit_hook = getattr(listener, "on_flit_ejected", None)
        packet_hook = getattr(listener, "on_packet_ejected", None)
        if flit_hook is None and packet_hook is None:
            raise TypeError(
                "listener implements neither on_flit_ejected nor "
                "on_packet_ejected"
            )
        if flit_hook is not None:
            self._flit_hooks.append(flit_hook)
        if packet_hook is not None:
            self._packet_hooks.append(packet_hook)
        return listener

    def remove_listener(self, listener):
        """Unregister a listener added with :meth:`add_listener`."""
        flit_hook = getattr(listener, "on_flit_ejected", None)
        packet_hook = getattr(listener, "on_packet_ejected", None)
        if flit_hook in self._flit_hooks:
            self._flit_hooks.remove(flit_hook)
        if packet_hook in self._packet_hooks:
            self._packet_hooks.remove(packet_hook)

    # --- hooks called by the simulation ---------------------------------

    def in_window(self, cycle):
        return self.window is not None and self.window[0] <= cycle < self.window[1]

    def record_created(self, packet, cycle):
        if self.in_window(cycle):
            self.packets_created_per_source[packet.src] += 1

    def record_injected(self, packet, cycle):
        if self.in_window(cycle):
            self.flits_injected_per_source[packet.src] += packet.size

    def record_flit_ejected(self, flit, cycle):
        if self.in_window(cycle):
            self.flits_ejected_per_source[flit.packet.src] += 1
            self.flits_ejected += 1
        if self._flit_hooks:
            for hook in self._flit_hooks:
                hook(flit, cycle)

    def record_ejected(self, packet, cycle):
        """Called on tail ejection; latency sample if created in-window."""
        if self._packet_hooks:
            for hook in self._packet_hooks:
                hook(packet, cycle)
        if self.in_window(cycle):
            self.packets_ejected += 1
        if self.window is None or packet.time_created < self.window[0]:
            return
        if packet.time_created >= self.window[1]:
            return
        latency = cycle - packet.time_created
        self.packet_latencies.append(latency)
        if packet.time_injected is not None:
            self.network_latencies.append(cycle - packet.time_injected)
        self.blocked_cycles.append(packet.blocked_cycles)
        if latency > self.max_packet_latency:
            self.max_packet_latency = latency

    # --- derived metrics --------------------------------------------------

    @property
    def window_cycles(self):
        if self.window is None:
            return 0
        return self.window[1] - self.window[0]

    def throughput_per_source(self):
        """Accepted flits per cycle for each source terminal."""
        cycles = self.window_cycles
        if cycles == 0:
            return [0.0] * self.num_terminals
        return [n / cycles for n in self.flits_ejected_per_source]

    def avg_throughput(self):
        """Mean accepted flits/cycle/terminal across active sources."""
        rates = self.active_source_rates()
        if not rates:
            return 0.0
        return sum(rates) / self.num_terminals

    def min_throughput(self):
        """Worst-case throughput: minimum over sources that offered load."""
        rates = self.active_source_rates()
        if not rates:
            return 0.0
        return min(rates)

    def active_source_rates(self):
        """Accepted rates of sources that created packets in-window."""
        per = self.throughput_per_source()
        return [
            per[s]
            for s in range(self.num_terminals)
            if self.packets_created_per_source[s] > 0
        ]

    # --- metrics export ---------------------------------------------------

    def publish_metrics(self, registry):
        """Register window counters/gauges/histograms into a registry.

        Snapshot semantics: call once per finished run on a fresh
        :class:`~repro.obs.metrics.MetricsRegistry` (or one whose
        counters you intend to accumulate into).
        """
        from repro.obs.metrics import LATENCY_EDGES

        registry.counter(
            "flits_ejected", help="Flits ejected inside the measurement window"
        ).inc(self.flits_ejected)
        registry.counter(
            "packets_ejected",
            help="Packets whose tail ejected inside the window",
        ).inc(self.packets_ejected)
        registry.counter(
            "packets_created",
            help="Packets created inside the window",
        ).inc(sum(self.packets_created_per_source))
        registry.counter(
            "flits_injected", help="Flits injected inside the window"
        ).inc(sum(self.flits_injected_per_source))
        registry.gauge(
            "throughput_avg",
            help="Mean accepted flits/cycle/terminal",
        ).set(self.avg_throughput())
        registry.gauge(
            "throughput_min",
            help="Worst-case accepted flits/cycle over active sources",
        ).set(self.min_throughput())
        registry.gauge(
            "window_cycles", help="Measurement window length in cycles"
        ).set(self.window_cycles)
        lat = registry.histogram(
            "packet_latency_cycles", LATENCY_EDGES,
            help="Packet latency (creation to tail ejection)",
        )
        for sample in self.packet_latencies:
            lat.observe(sample)
        blk = registry.histogram(
            "packet_blocked_cycles", LATENCY_EDGES,
            help="Cycles each packet spent blocked at a VC front",
        )
        for sample in self.blocked_cycles:
            blk.observe(sample)
        return registry
