"""Result summaries for simulation runs."""

import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.chaining import ChainStats


@dataclass
class LatencySummary:
    count: int
    mean: float
    p50: float
    p99: float
    max: float

    @classmethod
    def from_dict(cls, data):
        return cls(**data)

    @classmethod
    def of(cls, samples):
        if not samples:
            return cls(0, 0.0, 0.0, 0.0, 0.0)
        data = sorted(samples)
        n = len(data)
        return cls(
            count=n,
            mean=sum(data) / n,
            p50=data[n // 2],
            p99=data[min(n - 1, (99 * n) // 100)],
            max=data[-1],
        )


@dataclass
class SimResult:
    """Everything a bench needs from one simulation run."""

    offered_rate: float  # flits/terminal/cycle
    avg_throughput: float  # accepted flits/terminal/cycle (mean)
    min_throughput: float  # worst-case (paper's reported metric)
    packet_latency: LatencySummary
    network_latency: LatencySummary
    blocking: LatencySummary  # per-packet blocked cycles
    chain_stats: ChainStats = field(default_factory=ChainStats)
    cycles_run: int = 0
    #: Drain-phase outcome: did in-flight flits empty out, and how many
    #: drain cycles ran? ``drained`` is None when no drain was requested.
    drained: Optional[bool] = None
    drain_cycles: int = 0
    #: Profiler summary (cycles/sec, per-phase seconds) when profiling
    #: was enabled for the run; None otherwise.
    timing: Optional[dict] = None
    #: Robustness summaries (fault counters, transport, invariants,
    #: watchdog) when any of repro.faults was attached; None otherwise.
    faults: Optional[dict] = None
    #: Structured run warnings (e.g. ``"drain_aborted"`` when the drain
    #: budget expired with flits still in flight, so latency samples are
    #: censored). None when the run completed cleanly.
    warnings: Optional[List[str]] = None

    @property
    def saturated(self):
        """Heuristic: accepted load falls clearly short of offered."""
        return self.avg_throughput < 0.95 * self.offered_rate

    def to_dict(self):
        """JSON-serializable dict (nested dataclasses become dicts)."""
        data = dataclasses.asdict(self)
        data["saturated"] = self.saturated
        return data

    @classmethod
    def from_dict(cls, data):
        """Inverse of :meth:`to_dict` (sweep journals round-trip results)."""
        data = dict(data)
        data.pop("saturated", None)  # derived property, not a field
        data["packet_latency"] = LatencySummary.from_dict(data["packet_latency"])
        data["network_latency"] = LatencySummary.from_dict(data["network_latency"])
        data["blocking"] = LatencySummary.from_dict(data["blocking"])
        data["chain_stats"] = ChainStats(**data["chain_stats"])
        return cls(**data)


def summarize(collector, offered_rate, chain_stats, cycles_run,
              drained=None, drain_cycles=0, timing=None, faults=None,
              warnings=None):
    """Build a SimResult from a StatsCollector."""
    return SimResult(
        offered_rate=offered_rate,
        avg_throughput=collector.avg_throughput(),
        min_throughput=collector.min_throughput(),
        packet_latency=LatencySummary.of(collector.packet_latencies),
        network_latency=LatencySummary.of(collector.network_latencies),
        blocking=LatencySummary.of(collector.blocked_cycles),
        chain_stats=chain_stats,
        cycles_run=cycles_run,
        drained=drained,
        drain_cycles=drain_cycles,
        timing=timing,
        faults=faults,
        warnings=warnings,
    )
