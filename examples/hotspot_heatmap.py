"""Hotspot traffic and the tree-saturation heatmap.

Drives the mesh with hotspot traffic (20% of packets aimed at two
corners) with a NetworkSampler attached, then renders per-router state
as ASCII heatmaps. The congestion tree rooted at each hotspot is
clearly visible — this is the "tree saturation" (Kruskal & Snir) that
packet chaining mitigates in Figure 5 — and the buffered-flits view
shows it *building over time*, which the end-of-run counters cannot.

Run:  python examples/hotspot_heatmap.py
"""

import random

from repro import mesh_config
from repro.network.network import Network
from repro.obs import NetworkSampler
from repro.sim.runner import SimulationRun
from repro.stats.utilization import utilization_summary
from repro.traffic import BernoulliInjector, FixedLength, Hotspot

CYCLES = 1500
RATE = 0.35
SAMPLE_PERIOD = 100


def run(chaining):
    config = mesh_config(chaining=chaining)
    net = Network(config)
    sampler = net.attach_sampler(NetworkSampler(period=SAMPLE_PERIOD))
    rng = random.Random(4)
    pattern = Hotspot(net.num_terminals, hotspots=(0, 63), fraction=0.2)
    injector = BernoulliInjector(
        net.num_terminals, pattern, RATE, FixedLength(1), rng
    )
    net.stats.set_window(0, CYCLES)
    result = SimulationRun(net, injector, warmup=0, measure=CYCLES,
                           drain=0).execute()
    return net, sampler, result


def main():
    print(f"8x8 mesh, hotspot traffic (20% to corners 0 and 63), "
          f"rate {RATE}, {CYCLES} cycles, sampled every {SAMPLE_PERIOD}\n")
    for scheme in ("disabled", "same_input"):
        net, sampler, result = run(scheme)
        label = "iSLIP-1" if scheme == "disabled" else "packet chaining"
        print(f"--- {label} ---")
        print("switching activity (mean over run):")
        print(sampler.heatmap(field="activity"))
        print("buffered flits (final sample — the saturation tree):")
        print(sampler.heatmap(field="buffered", reduce="last"))
        print(utilization_summary(net, CYCLES))
        print(f"accepted {result.avg_throughput:.3f} flits/node/cycle, "
              f"worst source {result.min_throughput:.3f}, "
              f"mean latency {result.packet_latency.mean:.1f}\n")
    _, sampler, _ = run("disabled")
    print("hottest links (router, port, flits/cycle):")
    for router, port, util in sampler.hottest_links(top=5):
        print(f"  router {router:>2} port {port}: {util:.3f}")


if __name__ == "__main__":
    main()
