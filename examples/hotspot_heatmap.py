"""Hotspot traffic and the tree-saturation heatmap.

Drives the mesh with hotspot traffic (20% of packets aimed at two
corners) and renders per-router switching activity as an ASCII heatmap.
The congestion tree rooted at each hotspot is clearly visible — this is
the "tree saturation" (Kruskal & Snir) that packet chaining mitigates
in Figure 5.

Run:  python examples/hotspot_heatmap.py
"""

import random

from repro import mesh_config
from repro.network.network import Network
from repro.sim.runner import SimulationRun
from repro.stats.utilization import hottest_links, mesh_heatmap, utilization_summary
from repro.traffic import BernoulliInjector, FixedLength, Hotspot

CYCLES = 1500
RATE = 0.35


def run(chaining):
    config = mesh_config(chaining=chaining)
    net = Network(config)
    rng = random.Random(4)
    pattern = Hotspot(net.num_terminals, hotspots=(0, 63), fraction=0.2)
    injector = BernoulliInjector(
        net.num_terminals, pattern, RATE, FixedLength(1), rng
    )
    net.stats.set_window(0, CYCLES)
    result = SimulationRun(net, injector, warmup=0, measure=CYCLES,
                           drain=0).execute()
    return net, result


def main():
    print(f"8x8 mesh, hotspot traffic (20% to corners 0 and 63), "
          f"rate {RATE}, {CYCLES} cycles\n")
    for scheme in ("disabled", "same_input"):
        net, result = run(scheme)
        label = "iSLIP-1" if scheme == "disabled" else "packet chaining"
        print(f"--- {label} ---")
        print(mesh_heatmap(net, CYCLES))
        print(utilization_summary(net, CYCLES))
        print(f"accepted {result.avg_throughput:.3f} flits/node/cycle, "
              f"worst source {result.min_throughput:.3f}, "
              f"mean latency {result.packet_latency.mean:.1f}\n")
    net, _ = run("disabled")
    print("hottest links (router, port, flits/cycle):")
    for load in hottest_links(net, CYCLES, top=5):
        kind = "ej" if load.is_terminal else "net"
        print(f"  router {load.router:>2} port {load.port} [{kind}]: "
              f"{load.utilization:.3f}")


if __name__ == "__main__":
    main()
