"""Stability timeline: watching tree saturation form (Figure 5's story).

Drives the mesh at maximum injection and samples accepted throughput in
100-cycle windows. Without packet chaining, throughput peaks as queues
fill and then degrades as tree saturation forms; with chaining the
network stabilizes near its peak. Prints an ASCII timeline of both.

Run:  python examples/stability_timeline.py
"""

import random

from repro import mesh_config
from repro.network.network import Network
from repro.sim.runner import SimulationRun
from repro.stats.timeseries import attach
from repro.traffic import BernoulliInjector, FixedLength, UniformRandom

WINDOW = 100
CYCLES = 3000


def run(scheme):
    config = mesh_config(chaining=scheme)
    net = Network(config)
    series = attach(net.stats, window=WINDOW)
    net.stats.set_window(0, CYCLES)
    rng = random.Random(7)
    injector = BernoulliInjector(
        net.num_terminals, UniformRandom(net.num_terminals),
        rate=1.0, lengths=FixedLength(1), rng=rng,
    )
    SimulationRun(net, injector, warmup=0, measure=CYCLES, drain=0).execute()
    return series


def sparkline(values, peak):
    blocks = " .:-=+*#%@"
    out = []
    for v in values:
        idx = min(len(blocks) - 1, int(v / peak * (len(blocks) - 1)))
        out.append(blocks[idx])
    return "".join(out)


def main():
    print(f"8x8 mesh, single-flit uniform random at maximum injection;"
          f" {WINDOW}-cycle windows\n")
    results = {name: run(name) for name in ("disabled", "same_input")}
    peak = max(max(s.throughput_series()) for s in results.values())
    for name, series in results.items():
        tps = series.throughput_series()
        label = "iSLIP-1" if name == "disabled" else "chaining"
        print(f"{label:<9} |{sparkline(tps, peak)}|  "
              f"final/peak = {series.stability_ratio():.2f}")
    print(f"\npeak window throughput: {peak:.3f} flits/node/cycle")
    print("A flat tail means the network is stable past saturation; a"
          " decaying tail\nis tree saturation eating throughput"
          " (Section 4.1).")


if __name__ == "__main__":
    main()
