"""Application study: packet chaining in a cache-coherent CMP (Table 1).

Runs a synthetic PARSEC-like workload on the 64-core CMP model — cores,
private L1s, a distributed shared L2 with directory coherence, and four
memory controllers over the 8x8 mesh — with the paper's application
configuration: chaining among all VCs of the same input, connections
released after eight cycles, 64-bit datapath.

Run:  python examples/cmp_application.py [workload]
"""

import sys

from repro.cmp import WORKLOADS, run_application
from repro.network.config import mesh_config
from repro.stats.summary import LatencySummary

WARMUP, MEASURE = 300, 1200


def describe(system, label):
    lat = LatencySummary.of(system.stats.packet_latencies)
    ipc = system.aggregate_ipc()
    print(f"{label}:")
    print(f"  IPC                  : {ipc:.4f}")
    print(f"  network throughput   : {system.stats.avg_throughput():.3f} flits/node/cycle")
    print(f"  packet latency       : mean {lat.mean:.1f}, p99 {lat.p99:.0f}, max {lat.max:.0f}")
    print(f"  single-flit packets  : {100 * system.single_flit_fraction():.0f}%"
          f"  (paper: ~53%)")
    return ipc


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "blackscholes"
    if name not in WORKLOADS:
        raise SystemExit(f"unknown workload {name!r}; pick from {sorted(WORKLOADS)}")
    print(f"workload: {name} on a 64-core cache-coherent CMP\n")

    base = run_application(name, mesh_config(), warmup=WARMUP, measure=MEASURE)
    ipc_base = describe(base, "iSLIP-1 (no chaining)")

    chained = run_application(
        name,
        mesh_config(chaining="same_input", starvation_threshold=8),
        warmup=WARMUP, measure=MEASURE,
    )
    ipc_pc = describe(chained, "\npacket chaining (same input, threshold 8)")

    print(f"\nIPC increase from packet chaining: "
          f"{100 * (ipc_pc / ipc_base - 1):+.1f}%")


if __name__ == "__main__":
    main()
