"""Allocator shootout at maximum injection rate (the Figure 6(a) story).

Compares iSLIP-1, iSLIP-2, wavefront and augmenting-paths switch
allocators against iSLIP-1 + packet chaining on the 8x8 mesh with
single-flit uniform traffic at the maximum injection rate, and prints
each allocator's hardware cost from the Section 4.9 model next to its
performance — the paper's core trade-off in one table.

Run:  python examples/allocator_shootout.py
"""

from repro import AllocatorCostModel, mesh_config, run_simulation

SIM = dict(pattern="uniform", rate=1.0, packet_length=1,
           warmup=400, measure=1000, drain=0)

CONFIGS = [
    ("iSLIP-1", dict(allocator="islip1"), "islip1"),
    ("iSLIP-2", dict(allocator="islip2"), "islip2"),
    ("wavefront", dict(allocator="wavefront"), "wavefront"),
    ("augmenting", dict(allocator="augmenting"), "augmenting"),
    ("iSLIP-1 + PC", dict(allocator="islip1", chaining="same_input"),
     "pc_any_input"),
]


def main():
    cost = AllocatorCostModel(radix=5)  # mesh router
    print("8x8 mesh, single-flit packets, uniform random, "
          "maximum injection rate\n")
    print(f"{'allocator':<14} {'tput':>6} {'worst-src':>9}"
          f" {'area x':>7} {'power x':>8} {'delay x':>8}")
    baseline = None
    for name, overrides, cost_kind in CONFIGS:
        result = run_simulation(mesh_config(**overrides), **SIM)
        report = cost.report(cost_kind)
        tp = result.avg_throughput
        if baseline is None:
            baseline = tp
        print(f"{name:<14} {tp:>6.3f} {result.min_throughput:>9.3f}"
              f" {report.area:>7.2f} {report.power:>8.2f} {report.delay:>8.2f}"
              f"   ({100 * (tp / baseline - 1):+.1f}% vs iSLIP-1)")
    print("\nPacket chaining reaches the matching quality of far more"
          " expensive allocators\nwhile keeping a single-iteration"
          " separable allocator's cycle time (delay 1.0x).")


if __name__ == "__main__":
    main()
