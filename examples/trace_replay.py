"""Trace-driven network evaluation.

Records the coherence-message trace of one CMP run (cores + caches +
directory — the expensive part), then replays the identical traffic
against several router configurations. This is the classic trace-driven
NoC methodology: the workload is computed once, the network design
space is explored cheaply. (Open-loop replay: trace timing does not
react to backpressure — fine for latency comparisons at moderate load.)

Run:  python examples/trace_replay.py [workload]
"""

import sys

from repro.network.config import mesh_config
from repro.network.network import Network
from repro.sim.runner import SimulationRun
from repro.traffic.trace import TraceInjector, record_cmp_trace

RECORD_CYCLES = 800

CONFIGS = [
    ("iSLIP-1", dict()),
    ("iSLIP-2", dict(allocator="islip2")),
    ("wavefront", dict(allocator="wavefront")),
    ("PC same-input", dict(chaining="same_input", starvation_threshold=8)),
]


def main():
    workload = sys.argv[1] if len(sys.argv) > 1 else "blackscholes"
    print(f"recording {RECORD_CYCLES} cycles of {workload!r} coherence "
          f"traffic ...")
    trace = record_cmp_trace(workload, mesh_config(), cycles=RECORD_CYCLES)
    flits = sum(e.size for e in trace)
    print(f"trace: {len(trace)} packets, {flits} flits "
          f"({flits / RECORD_CYCLES / 64:.3f} flits/node/cycle offered)\n")

    print(f"{'router':<15} {'accepted':>9} {'mean lat':>9} {'p99':>6} {'max':>6}")
    span = trace[-1].cycle - trace[0].cycle + 1 if trace else 1
    for name, overrides in CONFIGS:
        net = Network(mesh_config(**overrides))
        injector = TraceInjector(trace, net.num_terminals)
        net.stats.set_window(0, 10**9)
        result = SimulationRun(net, injector, warmup=0,
                               measure=span, drain=2000).execute()
        print(f"{name:<15} {result.avg_throughput:>9.3f}"
              f" {result.packet_latency.mean:>9.1f}"
              f" {result.packet_latency.p99:>6.0f}"
              f" {result.packet_latency.max:>6.0f}")
    print("\nSame traffic, different routers: chaining trims the latency"
          " tail that the\ncoherence protocol's critical-path messages"
          " sit on.")


if __name__ == "__main__":
    main()
