"""Flattened butterfly with UGAL adaptive routing and packet chaining.

The paper's second topology (Section 3): a 4x4 FBFly with 4 terminals
per 10-port router, UGAL routing over two VC classes, and channel
delays of 1/2/4/6 cycles. This example sweeps the three chaining
schemes and shows why considering all inputs and VCs pays off when
routing is less predictable (Section 4.5).

Run:  python examples/fbfly_adaptive.py
"""

from repro import fbfly_config, run_simulation

SIM = dict(pattern="uniform", rate=1.0, packet_length=1,
           warmup=400, measure=1000, drain=0)

SCHEMES = ["disabled", "same_vc", "same_input", "any_input"]


def main():
    print("4x4 flattened butterfly, UGAL routing, 64 terminals, "
          "single-flit packets,\nuniform random @ maximum injection rate\n")
    print(f"{'chaining scheme':<18} {'throughput':>10} {'chains':>8}"
          f" {'sameVC':>7} {'sameIn':>7} {'otherIn':>8}")
    baseline = None
    for scheme in SCHEMES:
        result = run_simulation(fbfly_config(chaining=scheme), **SIM)
        cs = result.chain_stats
        tp = result.avg_throughput
        if baseline is None:
            baseline = tp
        print(f"{scheme:<18} {tp:>10.3f} {cs.total_chains:>8}"
              f" {cs.same_input_same_vc:>7} {cs.same_input_other_vc:>7}"
              f" {cs.other_input:>8}   ({100 * (tp / baseline - 1):+.1f}%)")
    print("\nWith UGAL, consecutive packets at an input are less likely"
          " to share an output\n(Section 4.6), so chaining across inputs"
          " finds the candidates the same-input\nschemes miss.")


if __name__ == "__main__":
    main()
