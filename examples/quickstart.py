"""Quickstart: packet chaining on the paper's 8x8 mesh.

Runs the paper's default configuration (Section 3) at a moderately
heavy load with and without packet chaining and prints throughput,
latency and the chaining-grant breakdown.

Run:  python examples/quickstart.py
"""

from repro import ChainingScheme, mesh_config, run_simulation

RATE = 0.45  # flits/terminal/cycle, just past iSLIP-1 saturation
SIM = dict(pattern="uniform", rate=RATE, packet_length=1,
           warmup=400, measure=1000, drain=500)


def main():
    print(f"8x8 mesh, DOR, 4 VCs x 8 slots, single-flit packets, "
          f"uniform random @ {RATE} flits/node/cycle\n")

    baseline = run_simulation(mesh_config(), **SIM)
    print("iSLIP-1 (incremental allocation, no chaining):")
    print(f"  accepted throughput : {baseline.avg_throughput:.3f} flits/node/cycle")
    print(f"  worst-case source   : {baseline.min_throughput:.3f}")
    print(f"  mean packet latency : {baseline.packet_latency.mean:.1f} cycles")

    chained = run_simulation(
        mesh_config(chaining=ChainingScheme.SAME_INPUT), **SIM
    )
    cs = chained.chain_stats
    print("\niSLIP-1 + packet chaining (all VCs of the same input):")
    print(f"  accepted throughput : {chained.avg_throughput:.3f} flits/node/cycle")
    print(f"  worst-case source   : {chained.min_throughput:.3f}")
    print(f"  mean packet latency : {chained.packet_latency.mean:.1f} cycles")
    print(f"  chains formed       : {cs.total_chains}"
          f" (same VC {cs.same_input_same_vc},"
          f" other VC {cs.same_input_other_vc},"
          f" other input {cs.other_input})")
    print(f"  PC/SA conflicts     : {cs.conflicts}")

    gain = 100 * (chained.avg_throughput / baseline.avg_throughput - 1)
    lat = 100 * (1 - chained.packet_latency.mean / baseline.packet_latency.mean)
    print(f"\npacket chaining: {gain:+.1f}% throughput, {lat:+.1f}% lower latency")


if __name__ == "__main__":
    main()
